#include "workload/trace_file.hh"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#ifdef SMTFETCH_HAVE_ZLIB
#include <zlib.h>
#endif

#include "sim/checkpoint.hh"
#include "util/logging.hh"

namespace smt
{

namespace
{

/** @name Little-endian scalar encoding (host-endianness agnostic). */
/// @{
void
put16(std::string &out, std::uint16_t v)
{
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void
put32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
put64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint16_t
get16(const unsigned char *p)
{
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t
get32(const unsigned char *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t
get64(const unsigned char *p)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}
/// @}

/** Info-byte layout: op kind nibble, CTI direction, mem-class flag. */
constexpr unsigned infoKindMask = 0x0f;
constexpr unsigned infoTakenBit = 0x10;
constexpr unsigned infoMemBit = 0x20;
constexpr unsigned infoKnownBits = 0x3f;

constexpr unsigned maxOpKind =
    static_cast<unsigned>(OpClass::JumpIndirect);

/** Fixed leading header chunk: magic + version + name length. */
constexpr std::size_t headPreludeBytes = sizeof(traceMagic) + 2 + 2;

/** Header bytes after the name: seed, codeBase, dataBase, count. */
constexpr std::size_t headTailBytes = 4 * 8;

/** v2 extension header following the v1-compatible chunk:
 *  codec u8, reserved u8, blockRecords u32, indexOffset u64,
 *  blockCount u64 (the last two backpatched on close). */
constexpr std::size_t headV2ExtBytes = 1 + 1 + 4 + 8 + 8;

/** Bytes per v2 seek-index entry: fileOffset u64, firstRecord u64. */
constexpr std::size_t indexEntryBytes = 16;

/** Per-block frame prelude: rawBytes u32, storedBytes u32. */
constexpr std::size_t blockFrameBytes = 8;

/** Sanity cap on the benchmark-name length field. */
constexpr std::size_t maxNameLen = 255;

/** Sanity cap on v2 records-per-block (1 GB of raw payload). */
constexpr std::uint32_t maxBlockRecords = 1u << 22;

/** Compress one raw record block; TraceFileError without zlib. */
std::string
deflateBlock(const std::string &raw, const std::string &path)
{
#ifdef SMTFETCH_HAVE_ZLIB
    uLongf bound = compressBound(static_cast<uLong>(raw.size()));
    std::string out(bound, '\0');
    if (compress2(reinterpret_cast<Bytef *>(out.data()), &bound,
                  reinterpret_cast<const Bytef *>(raw.data()),
                  static_cast<uLong>(raw.size()),
                  Z_BEST_SPEED) != Z_OK)
        throw TraceFileError(path +
                             ": deflate failed on a record block");
    out.resize(bound);
    return out;
#else
    (void)raw;
    throw TraceFileError(path +
                         ": deflate codec requested but this build "
                         "has no zlib — use the raw codec");
#endif
}

} // namespace

bool
traceCodecAvailable(std::uint8_t codec)
{
    if (codec == traceCodecRaw)
        return true;
#ifdef SMTFETCH_HAVE_ZLIB
    if (codec == traceCodecDeflate)
        return true;
#endif
    return false;
}

const char *
traceCodecName(std::uint8_t codec)
{
    switch (codec) {
      case traceCodecRaw: return "raw";
      case traceCodecDeflate: return "deflate";
      case traceCodecAuto: return "auto";
    }
    return "unknown";
}

namespace
{

/** Reverse of opName() for the text encoding. */
bool
kindFromName(const std::string &name, OpClass &out)
{
    for (unsigned k = 0; k <= maxOpKind; ++k) {
        OpClass op = static_cast<OpClass>(k);
        if (name == opName(op)) {
            out = op;
            return true;
        }
    }
    return false;
}

/** Encode pc as a code-relative instruction-word index. */
std::uint32_t
packWord(Addr addr, Addr code_base, const std::string &path,
         const char *what)
{
    if (addr < code_base || (addr - code_base) % instBytes != 0)
        throw TraceFileError(
            csprintf("%s: %s 0x%llx is not an instruction address in "
                     "the code region starting at 0x%llx",
                     path.c_str(), what, (unsigned long long)addr,
                     (unsigned long long)code_base));
    Addr word = (addr - code_base) / instBytes;
    if (word > 0xffffffffull)
        throw TraceFileError(csprintf(
            "%s: %s 0x%llx overflows the record encoding (more than "
            "2^32 instruction words past the code base 0x%llx)",
            path.c_str(), what, (unsigned long long)addr,
            (unsigned long long)code_base));
    return static_cast<std::uint32_t>(word);
}

std::uint64_t
parseUint(const std::string &tok, bool &ok)
{
    if (tok.empty()) {
        ok = false;
        return 0;
    }
    char *end = nullptr;
    std::uint64_t v = std::strtoull(tok.c_str(), &end, 0);
    ok = end != nullptr && *end == '\0';
    return v;
}

} // namespace

bool
traceFileIsText(const std::string &path)
{
    const std::string ext = ".strc";
    return path.size() >= ext.size() &&
           path.compare(path.size() - ext.size(), ext.size(), ext) ==
               0;
}

// ------------------------------------------------------------- writer

TraceWriter::TraceWriter(const std::string &path,
                         const TraceFileHeader &header,
                         const TraceWriteOptions &options)
    : filePath(path), hdr(header)
{
    hdr.text = traceFileIsText(path);
    hdr.version = hdr.text ? traceFormatV1 : options.version;
    hdr.recordCount = 0;
    hdr.blockCount = 0;
    hdr.indexOffset = 0;
    if (hdr.benchmark.empty() || hdr.benchmark.size() > maxNameLen)
        fail(csprintf("benchmark name \"%s\" must be 1..%zu bytes",
                      hdr.benchmark.c_str(), maxNameLen));
    if (!hdr.text && hdr.version != traceFormatV1 &&
        hdr.version != traceFormatV2)
        fail(csprintf("unsupported trace format version %u (this "
                      "build writes v%u and v%u)",
                      hdr.version, traceFormatV1, traceFormatV2));

    hdr.codec = options.codec;
    if (hdr.codec == traceCodecAuto)
        hdr.codec = traceCodecAvailable(traceCodecDeflate)
                        ? traceCodecDeflate
                        : traceCodecRaw;
    if (hdr.version != traceFormatV2)
        hdr.codec = traceCodecRaw;
    if (!traceCodecAvailable(hdr.codec))
        fail(csprintf("codec \"%s\" is not available in this build",
                      traceCodecName(hdr.codec)));
    hdr.blockRecords = options.blockRecords;
    if (hdr.version == traceFormatV2 &&
        (hdr.blockRecords == 0 || hdr.blockRecords > maxBlockRecords))
        fail(csprintf("block size %u records out of range [1, %u]",
                      hdr.blockRecords, maxBlockRecords));

    os.open(path, std::ios::binary | std::ios::trunc);
    if (!os)
        fail("cannot open for writing");

    if (!hdr.text) {
        std::string head(traceMagic, sizeof(traceMagic));
        put16(head, hdr.version);
        put16(head, static_cast<std::uint16_t>(hdr.benchmark.size()));
        head += hdr.benchmark;
        put64(head, hdr.seed);
        put64(head, hdr.codeBase);
        put64(head, hdr.dataBase);
        put64(head, 0); // recordCount, patched by close()
        if (hdr.version == traceFormatV2) {
            head.push_back(static_cast<char>(hdr.codec));
            head.push_back(0); // reserved
            put32(head, hdr.blockRecords);
            put64(head, 0); // indexOffset, patched by close()
            put64(head, 0); // blockCount, patched by close()
            blockBuf.reserve(static_cast<std::size_t>(
                                 hdr.blockRecords) *
                             traceRecordBytes);
        }
        os.write(head.data(),
                 static_cast<std::streamsize>(head.size()));
    }
}

TraceWriter::~TraceWriter()
{
    try {
        close();
    } catch (const TraceFileError &) {
        // Destruction must not throw; close() explicitly to observe
        // I/O failures.
    }
}

void
TraceWriter::append(const TraceRecord &rec)
{
    PackedTraceRecord p;
    p.pc = rec.si->pc;
    p.nextPc = rec.nextPc;
    p.memAddr = rec.memAddr;
    p.kind = rec.si->op;
    p.taken = rec.taken;
    p.depDepth = static_cast<std::uint8_t>(
        (rec.si->src1 != invalidReg ? 1 : 0) +
        (rec.si->src2 != invalidReg ? 1 : 0));
    append(p);
}

void
TraceWriter::append(const PackedTraceRecord &rec)
{
    if (closed)
        fail("append after close");
    if (hdr.text) {
        textRecords.push_back(rec);
        ++count;
        return;
    }

    std::string buf;
    buf.reserve(traceRecordBytes);
    put32(buf, packWord(rec.pc, hdr.codeBase, filePath, "record pc"));
    put32(buf, packWord(rec.nextPc, hdr.codeBase, filePath,
                        "record next-pc"));
    unsigned info = static_cast<unsigned>(rec.kind) & infoKindMask;
    if (rec.taken)
        info |= infoTakenBit;
    bool has_mem = rec.memAddr != invalidAddr;
    if (has_mem)
        info |= infoMemBit;
    buf.push_back(static_cast<char>(info));
    buf.push_back(static_cast<char>(rec.depDepth));
    put16(buf, 0); // reserved
    put64(buf, has_mem ? rec.memAddr : 0);
    ++count;

    if (hdr.version == traceFormatV2) {
        blockBuf += buf;
        if (++blockBuffered == hdr.blockRecords)
            flushBlock();
        return;
    }
    os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

void
TraceWriter::flushBlock()
{
    if (blockBuffered == 0)
        return;
    index.push_back({static_cast<std::uint64_t>(os.tellp()),
                     count - blockBuffered});
    const std::string *payload = &blockBuf;
    std::string packed;
    if (hdr.codec == traceCodecDeflate) {
        packed = deflateBlock(blockBuf, filePath);
        payload = &packed;
    }
    std::string frame;
    put32(frame, static_cast<std::uint32_t>(blockBuf.size()));
    put32(frame, static_cast<std::uint32_t>(payload->size()));
    os.write(frame.data(), static_cast<std::streamsize>(frame.size()));
    os.write(payload->data(),
             static_cast<std::streamsize>(payload->size()));
    if (!os)
        fail("I/O error while writing a record block");
    blockBuf.clear();
    blockBuffered = 0;
}

void
TraceWriter::close()
{
    if (closed)
        return;
    closed = true;

    if (hdr.text) {
        std::ostringstream text;
        text << "strc v" << hdr.version << "\n";
        text << "benchmark " << hdr.benchmark << "\n";
        text << "seed " << hdr.seed << "\n";
        text << "codeBase 0x" << std::hex << hdr.codeBase << std::dec
             << "\n";
        text << "dataBase 0x" << std::hex << hdr.dataBase << std::dec
             << "\n";
        text << "records " << count << "\n";
        text << "# r <pc> <next-pc> <kind> <T|-> <dep-depth> "
                "[<mem-addr>]\n";
        for (const auto &r : textRecords) {
            text << "r 0x" << std::hex << r.pc << " 0x" << r.nextPc
                 << std::dec << " " << opName(r.kind) << " "
                 << (r.taken ? "T" : "-") << " "
                 << static_cast<unsigned>(r.depDepth);
            if (r.memAddr != invalidAddr)
                text << " 0x" << std::hex << r.memAddr << std::dec;
            text << "\n";
        }
        std::string s = text.str();
        os.write(s.data(), static_cast<std::streamsize>(s.size()));
    } else {
        if (hdr.version == traceFormatV2) {
            flushBlock();
            // The seek index trails the payload: magic, then one
            // (fileOffset, firstRecord) pair per block.
            hdr.indexOffset = static_cast<std::uint64_t>(os.tellp());
            hdr.blockCount = index.size();
            std::string idx(traceIndexMagic,
                            sizeof(traceIndexMagic));
            for (const IndexEntry &e : index) {
                put64(idx, e.fileOffset);
                put64(idx, e.firstRecord);
            }
            os.write(idx.data(),
                     static_cast<std::streamsize>(idx.size()));
            std::string ext;
            put64(ext, hdr.indexOffset);
            put64(ext, hdr.blockCount);
            os.seekp(static_cast<std::streamoff>(
                headPreludeBytes + hdr.benchmark.size() +
                headTailBytes + 6));
            os.write(ext.data(),
                     static_cast<std::streamsize>(ext.size()));
        }
        // Patch the record count now that it is known.
        std::string buf;
        put64(buf, count);
        os.seekp(static_cast<std::streamoff>(
            headPreludeBytes + hdr.benchmark.size() + headTailBytes -
            8));
        os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    }
    os.flush();
    if (!os)
        fail("I/O error while finalizing");
    os.close();
}

void
TraceWriter::fail(const std::string &what) const
{
    throw TraceFileError(filePath + ": " + what);
}

// ------------------------------------------------------------- reader

TraceReader::TraceReader(const std::string &path, bool header_only)
    : filePath(path), headerOnly(header_only)
{
    is.open(path, std::ios::binary);
    if (!is)
        throw TraceFileError(filePath + ": cannot open trace file");

    if (traceFileIsText(path)) {
        hdr.text = true;
        parseText(header_only);
    } else {
        readBinaryHeader();
    }
}

void
TraceReader::readBinaryHeader()
{
    is.seekg(0, std::ios::end);
    const std::uint64_t file_size =
        static_cast<std::uint64_t>(is.tellg());
    is.seekg(0);

    errOffset = 0;
    unsigned char prelude[headPreludeBytes];
    if (!is.read(reinterpret_cast<char *>(prelude), sizeof(prelude)))
        fail(csprintf("truncated header: file is %llu bytes, the "
                      "fixed prelude alone is %zu",
                      (unsigned long long)file_size,
                      headPreludeBytes));

    if (std::char_traits<char>::compare(
            reinterpret_cast<const char *>(prelude), traceMagic,
            sizeof(traceMagic)) != 0)
        fail("bad magic: not a smtfetch trace file (expected "
             "\"SMTTRC\"; text fixtures must use the .strc "
             "extension)");

    errOffset = sizeof(traceMagic);
    hdr.version = get16(prelude + sizeof(traceMagic));
    if (hdr.version != traceFormatV1 && hdr.version != traceFormatV2)
        fail(csprintf("format version %u, but this build reads "
                      "versions %u and %u — re-record the trace "
                      "with this build's --record",
                      hdr.version, traceFormatV1, traceFormatV2));

    errOffset = sizeof(traceMagic) + 2;
    const std::size_t name_len =
        get16(prelude + sizeof(traceMagic) + 2);
    if (name_len == 0 || name_len > maxNameLen)
        fail(csprintf("benchmark-name length %zu overflows the "
                      "header (corrupt file?)",
                      name_len));

    errOffset = headPreludeBytes;
    std::string name(name_len, '\0');
    unsigned char tail[headTailBytes];
    if (!is.read(name.data(),
                 static_cast<std::streamsize>(name_len)) ||
        !is.read(reinterpret_cast<char *>(tail), sizeof(tail)))
        fail(csprintf("truncated header: expected %zu bytes, file "
                      "is %llu",
                      headPreludeBytes + name_len + headTailBytes,
                      (unsigned long long)file_size));

    hdr.benchmark = name;
    hdr.seed = get64(tail);
    hdr.codeBase = get64(tail + 8);
    hdr.dataBase = get64(tail + 16);
    hdr.recordCount = get64(tail + 24);

    headerBytes = headPreludeBytes + name_len + headTailBytes;
    if (hdr.version == traceFormatV2) {
        readV2Extension(file_size);
        if (!headerOnly)
            readV2Index(file_size);
        return;
    }

    errOffset = headerBytes;
    const std::uint64_t payload = file_size - headerBytes;
    if (hdr.recordCount > payload / traceRecordBytes)
        fail(csprintf("header promises %llu records (%llu bytes) but "
                      "only %llu payload bytes follow the header — "
                      "truncated or overflowing count",
                      (unsigned long long)hdr.recordCount,
                      (unsigned long long)(hdr.recordCount *
                                           traceRecordBytes),
                      (unsigned long long)payload));
    if (payload != hdr.recordCount * traceRecordBytes)
        fail(csprintf("%llu trailing bytes after the last record "
                      "(corrupt record count?)",
                      (unsigned long long)(payload -
                                           hdr.recordCount *
                                               traceRecordBytes)));
}

void
TraceReader::readV2Extension(std::uint64_t file_size)
{
    errOffset = headerBytes;
    unsigned char ext[headV2ExtBytes];
    if (!is.read(reinterpret_cast<char *>(ext), sizeof(ext)))
        fail(csprintf("truncated v2 extension header: expected %zu "
                      "bytes at offset %llu, file is %llu",
                      headV2ExtBytes, (unsigned long long)headerBytes,
                      (unsigned long long)file_size));
    hdr.codec = ext[0];
    hdr.blockRecords = get32(ext + 2);
    hdr.indexOffset = get64(ext + 6);
    hdr.blockCount = get64(ext + 14);
    headerBytes += headV2ExtBytes;

    if (hdr.codec != traceCodecRaw && hdr.codec != traceCodecDeflate)
        fail(csprintf("unknown record-block codec %u (known: %u raw, "
                      "%u deflate) — file written by a newer format "
                      "revision?",
                      hdr.codec, traceCodecRaw, traceCodecDeflate));
    if (!traceCodecAvailable(hdr.codec))
        fail(csprintf("record blocks are %s-compressed but this "
                      "build has no zlib — rebuild with zlib or "
                      "re-record with the raw codec",
                      traceCodecName(hdr.codec)));
    if (hdr.blockRecords == 0 || hdr.blockRecords > maxBlockRecords)
        fail(csprintf("block size %u records out of range [1, %u] "
                      "(corrupt extension header?)",
                      hdr.blockRecords, maxBlockRecords));

    const std::uint64_t expect_blocks =
        (hdr.recordCount + hdr.blockRecords - 1) / hdr.blockRecords;
    if (hdr.blockCount != expect_blocks)
        fail(csprintf("header promises %llu blocks for %llu records "
                      "of %u, expected %llu — corrupt extension "
                      "header",
                      (unsigned long long)hdr.blockCount,
                      (unsigned long long)hdr.recordCount,
                      hdr.blockRecords,
                      (unsigned long long)expect_blocks));

    const std::uint64_t index_bytes =
        sizeof(traceIndexMagic) + hdr.blockCount * indexEntryBytes;
    if (hdr.indexOffset < headerBytes ||
        hdr.indexOffset > file_size ||
        file_size - hdr.indexOffset != index_bytes)
        fail(csprintf("seek index at offset %llu does not fill the "
                      "%llu bytes between the payload and the end of "
                      "the %llu-byte file — truncated or corrupt "
                      "index",
                      (unsigned long long)hdr.indexOffset,
                      (unsigned long long)index_bytes,
                      (unsigned long long)file_size));
}

void
TraceReader::readV2Index(std::uint64_t file_size)
{
    (void)file_size;
    errOffset = hdr.indexOffset;
    is.seekg(static_cast<std::streamoff>(hdr.indexOffset));
    unsigned char magic[sizeof(traceIndexMagic)];
    if (!is.read(reinterpret_cast<char *>(magic), sizeof(magic)) ||
        std::char_traits<char>::compare(
            reinterpret_cast<const char *>(magic), traceIndexMagic,
            sizeof(traceIndexMagic)) != 0)
        fail("bad seek-index magic (expected \"SMTIDX\") — "
             "truncated or corrupt index");

    index.resize(hdr.blockCount);
    std::vector<unsigned char> raw(hdr.blockCount * indexEntryBytes);
    errOffset = hdr.indexOffset + sizeof(traceIndexMagic);
    if (!raw.empty() &&
        !is.read(reinterpret_cast<char *>(raw.data()),
                 static_cast<std::streamsize>(raw.size())))
        fail("truncated seek index");
    for (std::uint64_t b = 0; b < hdr.blockCount; ++b) {
        errOffset = hdr.indexOffset + sizeof(traceIndexMagic) +
                    b * indexEntryBytes;
        index[b].fileOffset = get64(raw.data() + b * indexEntryBytes);
        index[b].firstRecord =
            get64(raw.data() + b * indexEntryBytes + 8);
        if (index[b].firstRecord != b * hdr.blockRecords)
            fail(csprintf("index entry %llu starts at record %llu, "
                          "expected %llu (corrupt index)",
                          (unsigned long long)b,
                          (unsigned long long)index[b].firstRecord,
                          (unsigned long long)(b * hdr.blockRecords)));
        const std::uint64_t low =
            b == 0 ? headerBytes
                   : index[b - 1].fileOffset + blockFrameBytes;
        if (index[b].fileOffset < low ||
            index[b].fileOffset + blockFrameBytes > hdr.indexOffset)
            fail(csprintf("index entry %llu points at offset %llu, "
                          "outside the payload region (corrupt "
                          "index)",
                          (unsigned long long)b,
                          (unsigned long long)index[b].fileOffset));
    }
}

void
TraceReader::parseText(bool header_only)
{
    std::string line;
    std::size_t lineno = 0;
    bool saw_version = false;
    bool saw_count = false;
    std::uint64_t declared = 0;
    std::uint64_t record_lines = 0;

    auto lineFail = [&](const std::string &what) {
        fail(csprintf("line %zu: %s", lineno, what.c_str()));
    };

    while (true) {
        const std::streamoff here = is.tellg();
        if (here >= 0)
            errOffset = static_cast<std::uint64_t>(here);
        if (!std::getline(is, line))
            break;
        ++lineno;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        std::istringstream ls(line);
        std::string tok;
        if (!(ls >> tok) || tok[0] == '#')
            continue;

        // Header-only consumers (readTraceHeader) still count
        // record lines for the declared-count cross-check, but skip
        // tokenizing them.
        if (header_only && saw_version && tok == "r") {
            ++record_lines;
            continue;
        }

        if (!saw_version) {
            if (tok != "strc")
                lineFail("a text trace must start with \"strc v1\"");
            std::string ver;
            if (!(ls >> ver) ||
                ver != csprintf("v%u", traceFormatV1))
                lineFail(csprintf(
                    "unsupported text-trace version \"%s\" — this "
                    "build reads \"v%u\"",
                    ver.c_str(), traceFormatV1));
            saw_version = true;
            continue;
        }

        if (tok == "r") {
            ++record_lines;
            std::string pc_s, next_s, kind_s, taken_s, dep_s, mem_s;
            if (!(ls >> pc_s >> next_s >> kind_s >> taken_s >> dep_s))
                lineFail("a record line is \"r <pc> <next-pc> "
                         "<kind> <T|-> <dep-depth> [<mem-addr>]\"");
            PackedTraceRecord rec;
            bool ok = true, ok2 = true, ok3 = true;
            rec.pc = parseUint(pc_s, ok);
            rec.nextPc = parseUint(next_s, ok2);
            std::uint64_t dep = parseUint(dep_s, ok3);
            if (!ok || !ok2 || !ok3 || dep > 0xff)
                lineFail("bad number in record (addresses take "
                         "0x-hex or decimal; dep-depth is 0..255)");
            rec.depDepth = static_cast<std::uint8_t>(dep);
            if (!kindFromName(kind_s, rec.kind))
                lineFail(csprintf(
                    "unknown op kind \"%s\" (known: alu, mul, ld, "
                    "st, fp, br, jmp, call, ret, ijmp)",
                    kind_s.c_str()));
            if (taken_s == "T")
                rec.taken = true;
            else if (taken_s == "-")
                rec.taken = false;
            else
                lineFail(csprintf("bad taken flag \"%s\" (use T "
                                  "or -)",
                                  taken_s.c_str()));
            if (ls >> mem_s) {
                bool okm = true;
                rec.memAddr = parseUint(mem_s, okm);
                if (!okm)
                    lineFail(csprintf("bad mem-addr \"%s\"",
                                      mem_s.c_str()));
            }
            textRecords.push_back(rec);
            continue;
        }

        std::string value;
        if (!(ls >> value))
            lineFail(csprintf("header key \"%s\" needs a value",
                              tok.c_str()));
        bool ok = true;
        if (tok == "benchmark") {
            hdr.benchmark = value;
        } else if (tok == "seed") {
            hdr.seed = parseUint(value, ok);
        } else if (tok == "codeBase") {
            hdr.codeBase = parseUint(value, ok);
        } else if (tok == "dataBase") {
            hdr.dataBase = parseUint(value, ok);
        } else if (tok == "records") {
            declared = parseUint(value, ok);
            saw_count = true;
        } else {
            lineFail(csprintf(
                "unknown directive \"%s\" (known: benchmark, seed, "
                "codeBase, dataBase, records, r, #-comments)",
                tok.c_str()));
        }
        if (!ok)
            lineFail(csprintf("bad value \"%s\" for \"%s\"",
                              value.c_str(), tok.c_str()));
    }

    if (!saw_version)
        fail("empty trace: a text trace must start with \"strc v1\"");
    if (hdr.benchmark.empty())
        fail("missing \"benchmark <name>\" header line");
    if (saw_count && declared != record_lines)
        fail(csprintf("header declares %llu records but the file "
                      "holds %llu record lines",
                      (unsigned long long)declared,
                      (unsigned long long)record_lines));
    hdr.recordCount = record_lines;
}

void
TraceReader::loadBlock(std::uint64_t block)
{
    const IndexEntry &e = index[block];
    errOffset = e.fileOffset;
    is.clear();
    is.seekg(static_cast<std::streamoff>(e.fileOffset));
    unsigned char frame[blockFrameBytes];
    if (!is.read(reinterpret_cast<char *>(frame), sizeof(frame)))
        fail(csprintf("truncated frame for block %llu",
                      (unsigned long long)block));
    const std::uint32_t raw_bytes = get32(frame);
    const std::uint32_t stored_bytes = get32(frame + 4);

    const std::uint64_t expect_records =
        std::min<std::uint64_t>(hdr.blockRecords,
                                hdr.recordCount - e.firstRecord);
    if (raw_bytes != expect_records * traceRecordBytes)
        fail(csprintf("block %llu frame declares %u raw bytes, "
                      "expected %llu for its %llu records (corrupt "
                      "frame)",
                      (unsigned long long)block, raw_bytes,
                      (unsigned long long)(expect_records *
                                           traceRecordBytes),
                      (unsigned long long)expect_records));
    if (stored_bytes >
        hdr.indexOffset - e.fileOffset - blockFrameBytes)
        fail(csprintf("block %llu payload (%u bytes) overruns the "
                      "seek index at offset %llu (corrupt frame)",
                      (unsigned long long)block, stored_bytes,
                      (unsigned long long)hdr.indexOffset));

    errOffset = e.fileOffset + blockFrameBytes;
    if (hdr.codec == traceCodecRaw) {
        if (stored_bytes != raw_bytes)
            fail(csprintf("raw-codec block %llu stores %u bytes but "
                          "declares %u raw (corrupt frame)",
                          (unsigned long long)block, stored_bytes,
                          raw_bytes));
        blockData.resize(raw_bytes);
        if (!is.read(blockData.data(), raw_bytes))
            fail(csprintf("truncated payload for block %llu",
                          (unsigned long long)block));
    } else {
#ifdef SMTFETCH_HAVE_ZLIB
        blockScratch.resize(stored_bytes);
        if (!is.read(blockScratch.data(), stored_bytes))
            fail(csprintf("truncated payload for block %llu",
                          (unsigned long long)block));
        blockData.resize(raw_bytes);
        uLongf dest_len = raw_bytes;
        if (uncompress(reinterpret_cast<Bytef *>(blockData.data()),
                       &dest_len,
                       reinterpret_cast<const Bytef *>(
                           blockScratch.data()),
                       stored_bytes) != Z_OK ||
            dest_len != raw_bytes)
            fail(csprintf("block %llu does not inflate to the "
                          "declared %u bytes (corrupt payload)",
                          (unsigned long long)block, raw_bytes));
#else
        // The codec was validated against this build at open time.
        fail("deflate block in a build without zlib");
#endif
    }
    curBlock = block + 1;
    blockFirst = e.firstRecord;
    blockLen = static_cast<std::uint32_t>(expect_records);
    blockPos = 0;
}

void
TraceReader::decodeRecord(const unsigned char *buf,
                          PackedTraceRecord &out)
{
    const unsigned info = buf[8];
    if ((info & ~infoKnownBits) != 0)
        fail(csprintf("record %llu has unknown flag bits 0x%x set "
                      "(file written by a newer format revision?)",
                      (unsigned long long)count,
                      info & ~infoKnownBits));
    const unsigned kind = info & infoKindMask;
    if (kind > maxOpKind)
        fail(csprintf("record %llu has invalid op kind %u",
                      (unsigned long long)count, kind));

    out.pc = hdr.codeBase +
             static_cast<Addr>(get32(buf)) * instBytes;
    out.nextPc = hdr.codeBase +
                 static_cast<Addr>(get32(buf + 4)) * instBytes;
    out.kind = static_cast<OpClass>(kind);
    out.taken = (info & infoTakenBit) != 0;
    out.depDepth = buf[9];
    out.memAddr =
        (info & infoMemBit) != 0 ? get64(buf + 12) : invalidAddr;
}

bool
TraceReader::next(PackedTraceRecord &out)
{
    if (headerOnly || count >= hdr.recordCount)
        return false;

    if (hdr.text) {
        out = textRecords[count++];
        return true;
    }

    if (hdr.version == traceFormatV2) {
        if (curBlock == 0 || blockPos == blockLen)
            loadBlock(count / hdr.blockRecords);
        decodeRecord(reinterpret_cast<const unsigned char *>(
                         blockData.data()) +
                         static_cast<std::size_t>(blockPos) *
                             traceRecordBytes,
                     out);
        ++blockPos;
        ++count;
        return true;
    }

    errOffset = headerBytes + count * traceRecordBytes;
    unsigned char buf[traceRecordBytes];
    if (!is.read(reinterpret_cast<char *>(buf), sizeof(buf)))
        fail(csprintf("truncated record %llu (header promises %llu "
                      "records)",
                      (unsigned long long)count,
                      (unsigned long long)hdr.recordCount));
    decodeRecord(buf, out);
    ++count;
    return true;
}

void
TraceReader::skipTo(std::uint64_t record_index)
{
    if (record_index > hdr.recordCount)
        fail(csprintf("cannot skip to record %llu: the trace holds "
                      "only %llu records",
                      (unsigned long long)record_index,
                      (unsigned long long)hdr.recordCount));
    count = record_index;
    if (hdr.text || headerOnly)
        return;

    if (hdr.version == traceFormatV2) {
        if (record_index == hdr.recordCount) {
            // End-of-trace: no block need be resident.
            curBlock = 0;
            blockLen = 0;
            blockPos = 0;
            return;
        }
        const std::uint64_t block = record_index / hdr.blockRecords;
        if (curBlock != block + 1)
            loadBlock(block);
        blockPos =
            static_cast<std::uint32_t>(record_index - blockFirst);
        return;
    }

    is.clear();
    is.seekg(static_cast<std::streamoff>(
        headerBytes + record_index * traceRecordBytes));
}

void
TraceReader::fail(const std::string &what) const
{
    throw TraceFileError(csprintf("%s (byte %llu): %s",
                                  filePath.c_str(),
                                  (unsigned long long)errOffset,
                                  what.c_str()));
}

TraceFileHeader
readTraceHeader(const std::string &path)
{
    return TraceReader(path, /*header_only=*/true).header();
}

// -------------------------------------------------------- file stream

FileTraceStream::FileTraceStream(const BenchmarkImage &image,
                                 const std::string &path)
    : TraceSource(image), reader(path)
{
    const TraceFileHeader &h = reader.header();
    if (h.benchmark != image.profile.name)
        throw TraceFileError(csprintf(
            "%s: trace was recorded for benchmark \"%s\" but is "
            "bound to an image of \"%s\"",
            path.c_str(), h.benchmark.c_str(),
            image.profile.name.c_str()));
    if (h.codeBase != image.program.base() ||
        h.dataBase != image.dataBase)
        throw TraceFileError(csprintf(
            "%s: trace address bases (code 0x%llx, data 0x%llx) do "
            "not match the image (code 0x%llx, data 0x%llx) — was "
            "the image built with a different seed or thread slot?",
            path.c_str(), (unsigned long long)h.codeBase,
            (unsigned long long)h.dataBase,
            (unsigned long long)image.program.base(),
            (unsigned long long)image.dataBase));
}

TraceRecord
FileTraceStream::generate()
{
    PackedTraceRecord p;
    if (!reader.next(p))
        throw TraceFileError(csprintf(
            "%s: trace exhausted after %llu records — this "
            "simulation consumes more correct-path instructions "
            "than were recorded; re-record with longer windows or a "
            "--record-pad margin",
            reader.path().c_str(),
            (unsigned long long)reader.recordsRead()));

    const StaticInst *si = img.program.lookup(p.pc);
    if (si == nullptr)
        throw TraceFileError(csprintf(
            "%s: record %llu pc 0x%llx is outside the program "
            "image [0x%llx, 0x%llx)",
            reader.path().c_str(),
            (unsigned long long)(reader.recordsRead() - 1),
            (unsigned long long)p.pc,
            (unsigned long long)img.program.base(),
            (unsigned long long)img.program.limit()));
    if (si->op != p.kind)
        throw TraceFileError(csprintf(
            "%s: record %llu op kind \"%s\" does not match the "
            "program's \"%s\" at pc 0x%llx — trace/program mismatch "
            "(different profile or seed?)",
            reader.path().c_str(),
            (unsigned long long)(reader.recordsRead() - 1),
            std::string(opName(p.kind)).c_str(),
            std::string(opName(si->op)).c_str(),
            (unsigned long long)p.pc));

    TraceRecord rec;
    rec.si = si;
    rec.taken = p.taken;
    rec.nextPc = p.nextPc;
    rec.memAddr = p.memAddr;
    return rec;
}

void
FileTraceStream::save(CheckpointWriter &w) const
{
    saveBase(w);
    w.u64(generatedRecords());
}

void
FileTraceStream::restore(CheckpointReader &r)
{
    if (reader.recordsRead() != 0)
        r.fail("trace-file restore requires a freshly-opened "
               "replay stream");
    restoreBase(r);
    std::uint64_t skip = r.u64();
    if (skip != generatedRecords())
        r.fail(csprintf("trace-file position %llu disagrees with "
                        "the %llu records the stream generated "
                        "(corrupt payload)",
                        (unsigned long long)skip,
                        (unsigned long long)generatedRecords()));
    // The file content is immutable, so resuming is repositioning
    // past the already-consumed prefix — O(1) via the fixed record
    // stride (v1) or the block seek index (v2).
    if (skip > reader.header().recordCount)
        r.fail(csprintf("%s holds only %llu records but the "
                        "checkpoint consumed %llu — the checkpoint "
                        "was saved against a different trace file",
                        reader.path().c_str(),
                        (unsigned long long)
                            reader.header().recordCount,
                        (unsigned long long)skip));
    reader.skipTo(skip);
}

} // namespace smt
