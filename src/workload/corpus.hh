/**
 * @file
 * Trace-corpus manifests: a JSON index over a directory of recorded
 * trace files, so sweep specs can name workloads by benchmark label
 * (`{"corpus": "manifest.json", "mix": ["mcf", "gcc"]}`) instead of
 * hard-coding per-machine paths. Each entry carries the trace's
 * sha256, benchmark label, record count and format version; loading
 * a mix cross-checks all of them against the file on disk, so a
 * stale or corrupted corpus fails fast with an actionable message
 * instead of silently replaying the wrong instructions.
 */

#ifndef SMTFETCH_WORKLOAD_CORPUS_HH
#define SMTFETCH_WORKLOAD_CORPUS_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace smt
{

/** User-facing error in a corpus manifest or one of its traces. */
class CorpusError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** The manifest schema revision this build reads and writes. */
constexpr std::uint32_t corpusManifestVersion = 1;

/** One trace listed by a corpus manifest. */
struct CorpusEntry
{
    std::string path;         //!< as listed (manifest-relative)
    std::string resolvedPath; //!< usable from the current directory
    std::string sha256;       //!< lowercase hex digest of the file
    std::string benchmark;    //!< mix label == trace header benchmark
    std::uint64_t records = 0;
    std::uint16_t traceVersion = 0;
};

/** A loaded (schema-validated, not yet file-checked) manifest. */
struct CorpusManifest
{
    std::string path; //!< the manifest file itself
    std::vector<CorpusEntry> entries;

    /** Entry for a benchmark label; CorpusError listing the
     *  available labels when absent. */
    const CorpusEntry &find(const std::string &benchmark) const;
};

/**
 * Parse and schema-check a manifest file. Every violation — missing
 * file, malformed JSON, version skew, absent or ill-typed fields,
 * duplicate labels — raises CorpusError naming the manifest and the
 * offending entry. Trace files are not touched; see
 * validateCorpusEntry.
 */
CorpusManifest loadCorpusManifest(const std::string &path);

/**
 * Cross-check one entry against the trace file on disk: existence,
 * sha256, and the header's benchmark/record-count/format-version.
 * CorpusError on any mismatch, naming manifest, entry and remedy.
 */
void validateCorpusEntry(const CorpusManifest &manifest,
                         const CorpusEntry &entry);

/**
 * Describe an existing trace file for inclusion in a manifest:
 * hashes the file and reads its header. `listed_path` is what the
 * manifest will record (typically manifest-relative); `trace_path`
 * is where the file lives now.
 */
CorpusEntry describeTrace(const std::string &trace_path,
                          const std::string &listed_path);

/** Write `manifest.entries` to `manifest.path` as manifest JSON. */
void writeCorpusManifest(const CorpusManifest &manifest);

} // namespace smt

#endif // SMTFETCH_WORKLOAD_CORPUS_HH
