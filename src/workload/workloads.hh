/**
 * @file
 * The paper's multithreaded workloads (Table 2) and helpers to
 * instantiate the per-thread benchmark images for a workload.
 */

#ifndef SMTFETCH_WORKLOAD_WORKLOADS_HH
#define SMTFETCH_WORKLOAD_WORKLOADS_HH

#include <memory>
#include <string>
#include <vector>

#include "workload/program_builder.hh"

namespace smt
{

/** A named multithreaded workload: an ordered list of benchmarks. */
struct WorkloadSpec
{
    std::string name;                    //!< e.g. "4_MIX"
    std::vector<std::string> benchmarks; //!< thread i runs benchmarks[i]
};

/** All ten Table 2 workloads, in paper order. */
const std::vector<WorkloadSpec> &table2Workloads();

/** Lookup by name ("2_ILP", "8_MIX", ...); fatal if unknown. */
const WorkloadSpec &workloadFor(const std::string &name);

/** A fully-instantiated workload: one image per hardware thread. */
struct WorkloadImages
{
    WorkloadSpec spec;
    std::vector<std::unique_ptr<BenchmarkImage>> images;

    unsigned numThreads() const
    {
        return static_cast<unsigned>(images.size());
    }
};

/**
 * Build all per-thread images for a workload. Each thread gets a
 * disjoint code and data address range so shared caches and predictor
 * tables see realistic cross-thread interference.
 */
WorkloadImages buildWorkload(const WorkloadSpec &spec,
                             std::uint64_t seed = 0);

/** Convenience: build a single-benchmark (superscalar) workload. */
WorkloadImages buildSingle(const std::string &benchmark,
                           std::uint64_t seed = 0);

} // namespace smt

#endif // SMTFETCH_WORKLOAD_WORKLOADS_HH
