/**
 * @file
 * The paper's multithreaded workloads (Table 2) and helpers to
 * instantiate the per-thread benchmark images for a workload.
 */

#ifndef SMTFETCH_WORKLOAD_WORKLOADS_HH
#define SMTFETCH_WORKLOAD_WORKLOADS_HH

#include <memory>
#include <string>
#include <vector>

#include "workload/program_builder.hh"

namespace smt
{

/** A named multithreaded workload: an ordered list of benchmarks. */
struct WorkloadSpec
{
    std::string name;                    //!< e.g. "4_MIX"
    std::vector<std::string> benchmarks; //!< thread i runs benchmarks[i]

    /**
     * Optional per-thread trace files. Empty (the common case) means
     * every thread synthesizes its stream from its benchmark profile;
     * otherwise one entry per thread, where a non-empty path replays
     * that file and "" keeps the thread synthetic.
     */
    std::vector<std::string> traces;
};

/** All ten Table 2 workloads, in paper order. */
const std::vector<WorkloadSpec> &table2Workloads();

/** Is this a "trace:<path>[,<path>...]" workload name? */
bool isTraceWorkloadName(const std::string &name);

/**
 * Build the workload spec for a "trace:..." name: one thread per
 * comma-separated trace file, benchmarks resolved from the file
 * headers. TraceFileError on unreadable or malformed files.
 */
WorkloadSpec traceWorkload(const std::string &name);

/** Lookup by name ("2_ILP", "8_MIX", ...); fatal if unknown. */
const WorkloadSpec &workloadFor(const std::string &name);

/**
 * Thread count a workload name will run with, without touching any
 * trace file: comma-counted paths for "trace:..." names, the Table 2
 * roster size for mix names, 1 for bare benchmark names.
 */
unsigned workloadThreadCount(const std::string &name);

/** A fully-instantiated workload: one image per hardware thread. */
struct WorkloadImages
{
    WorkloadSpec spec;
    std::vector<std::unique_ptr<BenchmarkImage>> images;

    unsigned numThreads() const
    {
        return static_cast<unsigned>(images.size());
    }
};

/**
 * Build all per-thread images for a workload. Each thread gets a
 * disjoint code and data address range so shared caches and predictor
 * tables see realistic cross-thread interference.
 */
WorkloadImages buildWorkload(const WorkloadSpec &spec,
                             std::uint64_t seed = 0);

/** Convenience: build a single-benchmark (superscalar) workload. */
WorkloadImages buildSingle(const std::string &benchmark,
                           std::uint64_t seed = 0);

} // namespace smt

#endif // SMTFETCH_WORKLOAD_WORKLOADS_HH
