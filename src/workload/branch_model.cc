#include "workload/branch_model.hh"

#include "sim/checkpoint.hh"
#include "util/bitfield.hh"
#include "util/logging.hh"

namespace smt
{

namespace
{

/** Deterministic per-(seed, n) uniform 32-bit draw. */
std::uint32_t
draw32(std::uint64_t seed, std::uint64_t n)
{
    return static_cast<std::uint32_t>(mix64(seed ^ (n * 0x9e37ULL)) >> 32);
}

std::uint32_t
probToThreshold(double p)
{
    if (p <= 0.0)
        return 0;
    if (p >= 1.0)
        return ~0u;
    return static_cast<std::uint32_t>(p * 4294967296.0);
}

} // namespace

BranchModel
BranchModel::makeBiased(double p_taken, std::uint64_t seed)
{
    BranchModel m;
    m.modelKind = Kind::Biased;
    m.seed = seed;
    m.takenThreshold = probToThreshold(p_taken);
    return m;
}

BranchModel
BranchModel::makeLoop(unsigned trip_count)
{
    if (trip_count < 2)
        trip_count = 2;
    BranchModel m;
    m.modelKind = Kind::Loop;
    m.tripCount = trip_count;
    return m;
}

BranchModel
BranchModel::makeCorrelated(unsigned history_bits, std::uint64_t seed)
{
    if (history_bits == 0 || history_bits > 16)
        panic("correlated branch history bits %u out of range",
              history_bits);
    BranchModel m;
    m.modelKind = Kind::Correlated;
    m.historyBits = history_bits;
    m.seed = seed;
    return m;
}

BranchModel
BranchModel::makeCorrelatedPath(unsigned depth, std::uint64_t seed)
{
    if (depth == 0 || depth > 3)
        panic("path-correlated branch depth %u out of range", depth);
    BranchModel m;
    m.modelKind = Kind::CorrelatedPath;
    m.historyBits = depth;
    m.seed = seed;
    return m;
}

BranchModel
BranchModel::makeRandom(std::uint64_t seed)
{
    BranchModel m;
    m.modelKind = Kind::Random;
    m.seed = seed;
    m.takenThreshold = probToThreshold(0.5);
    return m;
}

bool
BranchModel::next(std::uint64_t global_history, std::uint64_t path_sig)
{
    switch (modelKind) {
      case Kind::Biased:
      case Kind::Random: {
        bool taken = draw32(seed, execCount) < takenThreshold;
        ++execCount;
        return taken;
      }
      case Kind::Loop: {
        ++tripPos;
        if (tripPos >= tripCount) {
            tripPos = 0;
            return false; // loop exit
        }
        return true; // loop back-edge taken
      }
      case Kind::Correlated: {
        // Deterministic function of recent global outcomes: any
        // history-indexed predictor with a conflict-free entry per
        // (branch, history) pattern learns this perfectly. Outcomes
        // lean taken 70/30 across patterns, as real correlated
        // branches are also globally biased.
        std::uint64_t h = global_history & mask(historyBits);
        ++execCount;
        return (mix64(seed ^ (h * 0x100000001b3ULL)) & 0xff) < 179;
      }
      case Kind::CorrelatedPath: {
        // Deterministic function of the last 1..3 taken-branch
        // targets: learnable by path-indexed predictors (the stream
        // predictor's DOLC index) and partially by outcome-history
        // predictors.
        std::uint64_t h =
            path_sig & mask(historyBits * pathSigBitsPerTarget);
        ++execCount;
        return (mix64(seed ^ (h * 0x9e3779b97f4a7c15ULL)) & 0xff) < 179;
      }
    }
    panic("unreachable branch model kind");
}

double
BranchModel::expectedTakenRate() const
{
    switch (modelKind) {
      case Kind::Biased:
      case Kind::Random:
        return takenThreshold / 4294967296.0;
      case Kind::Loop:
        return 1.0 - 1.0 / tripCount;
      case Kind::Correlated:
      case Kind::CorrelatedPath:
        return 0.5;
    }
    return 0.5;
}

IndirectModel::IndirectModel(std::vector<Addr> targets,
                             double dominant_prob, std::uint64_t seed)
    : targetSet(std::move(targets)),
      dominantThreshold(probToThreshold(dominant_prob)), seed(seed)
{
    if (targetSet.empty())
        panic("IndirectModel with no targets");
}

Addr
IndirectModel::next()
{
    std::uint32_t d = draw32(seed, execCount);
    ++execCount;
    if (targetSet.size() == 1 || d < dominantThreshold)
        return targetSet[0];
    // Spread the remainder uniformly over the minor targets.
    std::size_t idx =
        1 + (mix64(seed ^ d) % (targetSet.size() - 1));
    return targetSet[idx];
}

void
BranchModel::save(CheckpointWriter &w) const
{
    w.u64(execCount);
    w.u32(tripPos);
}

void
BranchModel::restore(CheckpointReader &r)
{
    execCount = r.u64();
    tripPos = r.u32();
    if (tripCount != 0 && tripPos >= tripCount)
        r.fail(csprintf("loop branch position %u out of range "
                        "[0, %u) (corrupt payload)",
                        tripPos, tripCount));
}

void
IndirectModel::save(CheckpointWriter &w) const
{
    w.u64(execCount);
}

void
IndirectModel::restore(CheckpointReader &r)
{
    execCount = r.u64();
}

} // namespace smt
