/**
 * @file
 * Versioned on-disk trace format and the file-backed trace source.
 *
 * A trace file holds one thread's correct-path dynamic instruction
 * sequence plus the header needed to rebuild the static program it
 * executes over (benchmark profile name, build seed, code/data bases).
 * Two encodings share the same logical content:
 *
 *  - binary (`.trc`): a fixed-size little-endian header followed by
 *    packed 20-byte records — the production format `smtsim --record`
 *    writes and FileTraceStream replays;
 *  - text (`.strc`): a line-oriented rendering for hand-written test
 *    fixtures and human inspection.
 *
 * Every malformed input is a TraceFileError with an actionable
 * message, never UB: bad magic, version skew, truncated headers or
 * records, and counts that disagree with the file size are all
 * detected up front.
 */

#ifndef SMTFETCH_WORKLOAD_TRACE_FILE_HH
#define SMTFETCH_WORKLOAD_TRACE_FILE_HH

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "isa/opcode.hh"
#include "util/types.hh"
#include "workload/trace.hh"

namespace smt
{

/** User-facing error in a trace file: I/O failure or malformed
 *  content. The message names the file and what to do about it. */
class TraceFileError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** The trace format revision this build reads and writes. */
constexpr std::uint16_t traceFormatVersion = 1;

/** Binary file magic ("SMTTRC", no terminator). */
constexpr char traceMagic[6] = {'S', 'M', 'T', 'T', 'R', 'C'};

/** Size in bytes of one packed binary record. */
constexpr std::size_t traceRecordBytes = 20;

/**
 * Trace file header: everything needed to rebuild the benchmark image
 * the records were captured against (buildImage is deterministic in
 * profile, bases and seed, so replay reconstructs the identical
 * program and wrong-path dictionary).
 */
struct TraceFileHeader
{
    std::string benchmark;       //!< profile name ("gzip", ...)
    std::uint16_t version = traceFormatVersion;
    std::uint64_t seed = 0;      //!< buildImage seed salt
    Addr codeBase = 0;           //!< program base address
    Addr dataBase = 0;           //!< data region base address
    std::uint64_t recordCount = 0;
    bool text = false;           //!< encoding of the backing file
};

/**
 * One decoded trace record, independent of any program image. The
 * binary encoding packs pc/nextPc as 32-bit word offsets from
 * codeBase, one info byte (op kind, CTI direction, mem-class flag),
 * the register-dependency depth and the memory effective address.
 */
struct PackedTraceRecord
{
    Addr pc = invalidAddr;
    Addr nextPc = invalidAddr;
    Addr memAddr = invalidAddr;  //!< invalidAddr when not a mem op
    OpClass kind = OpClass::IntAlu;
    bool taken = false;
    std::uint8_t depDepth = 0;   //!< register source-operand count
};

/** Does the path name the text encoding (`.strc`)? */
bool traceFileIsText(const std::string &path);

/**
 * Streaming trace capture. The encoding follows the path's extension.
 * The header's recordCount is patched on close() (binary) or the
 * buffered records are flushed then (text); destruction closes.
 */
class TraceWriter
{
  public:
    TraceWriter(const std::string &path, const TraceFileHeader &header);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append a live record (packs pc/kind/deps from rec.si). */
    void append(const TraceRecord &rec);

    /** Append an already-packed record (tests, transcoding). */
    void append(const PackedTraceRecord &rec);

    /** Finish the file; idempotent. TraceFileError on I/O failure. */
    void close();

    std::uint64_t recordsWritten() const { return count; }
    const std::string &path() const { return filePath; }

  private:
    [[noreturn]] void fail(const std::string &what) const;

    std::string filePath;
    TraceFileHeader hdr;
    std::ofstream os;
    std::uint64_t count = 0;
    bool closed = false;

    /** Text records buffered until close (fixtures are small). */
    std::vector<PackedTraceRecord> textRecords;
};

/**
 * Sequential trace decoder. The constructor validates the whole
 * header, including that the record count agrees with the file size,
 * so corruption surfaces before any simulation starts.
 */
class TraceReader
{
  public:
    /**
     * @param header_only Validate and expose the header without
     *        decoding records (next() then reports end-of-trace);
     *        spares re-tokenizing every line of a text trace when
     *        only the header is needed (readTraceHeader).
     */
    explicit TraceReader(const std::string &path,
                         bool header_only = false);

    const TraceFileHeader &header() const { return hdr; }

    /**
     * Decode the next record. @return false at the clean end of the
     * trace; throws TraceFileError on any corruption.
     */
    bool next(PackedTraceRecord &out);

    std::uint64_t recordsRead() const { return count; }
    const std::string &path() const { return filePath; }

  private:
    [[noreturn]] void fail(const std::string &what) const;

    void readBinaryHeader();
    void parseText(bool header_only);

    std::string filePath;
    TraceFileHeader hdr;
    std::ifstream is;
    std::uint64_t count = 0;
    bool headerOnly = false;

    /** Text encoding is fully parsed up front (fixture-sized). */
    std::vector<PackedTraceRecord> textRecords;
};

/** Parse just the header of a trace file (workload construction). */
TraceFileHeader readTraceHeader(const std::string &path);

/**
 * Replays a recorded trace file as a TraceSource. The image must be
 * the one named by the file's header (same profile, bases and seed) —
 * the constructor cross-checks and every delivered record is validated
 * against the static program, so a trace/program mismatch is an error,
 * not silent divergence.
 */
class FileTraceStream : public TraceSource
{
  public:
    /** @param image Must outlive the stream. */
    FileTraceStream(const BenchmarkImage &image,
                    const std::string &path);

    const TraceFileHeader &header() const { return reader.header(); }

    /**
     * @name Checkpoint serialization: the base replay state plus the
     * file position, re-established on restore by skipping the
     * already-generated prefix of the (deterministic) trace file.
     */
    /// @{
    void save(CheckpointWriter &w) const override;
    void restore(CheckpointReader &r) override;
    /// @}

  protected:
    TraceRecord generate() override;

  private:
    TraceReader reader;
};

} // namespace smt

#endif // SMTFETCH_WORKLOAD_TRACE_FILE_HH
