/**
 * @file
 * Versioned on-disk trace format and the file-backed trace source.
 *
 * A trace file holds one thread's correct-path dynamic instruction
 * sequence plus the header needed to rebuild the static program it
 * executes over (benchmark profile name, build seed, code/data bases).
 * Two encodings share the same logical content:
 *
 *  - binary (`.trc`): a fixed-size little-endian header followed by
 *    the record payload — the production format `smtsim --record`
 *    writes and FileTraceStream replays. Two binary revisions exist:
 *    v1 is a flat array of packed 20-byte records; v2 (the default
 *    written) groups records into framed blocks — optionally
 *    deflate-compressed — and appends a per-block seek index, so
 *    replay streams one block at a time in bounded memory and
 *    checkpoint restore seeks instead of re-reading the prefix;
 *  - text (`.strc`): a line-oriented rendering for hand-written test
 *    fixtures and human inspection.
 *
 * Every malformed input is a TraceFileError with an actionable
 * message, never UB: bad magic, version skew, truncated headers or
 * records, and counts that disagree with the file size are all
 * detected up front.
 */

#ifndef SMTFETCH_WORKLOAD_TRACE_FILE_HH
#define SMTFETCH_WORKLOAD_TRACE_FILE_HH

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "isa/opcode.hh"
#include "util/types.hh"
#include "workload/trace.hh"

namespace smt
{

/** User-facing error in a trace file: I/O failure or malformed
 *  content. The message names the file and what to do about it. */
class TraceFileError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** The legacy flat-record binary revision (still read). */
constexpr std::uint16_t traceFormatV1 = 1;

/**
 * The streamed revision this build writes by default: records are
 * grouped into fixed-size framed blocks (optionally compressed) and
 * a per-block seek index trails the file, so readers decode one
 * block at a time in bounded memory and seek in O(1).
 */
constexpr std::uint16_t traceFormatV2 = 2;

/** The trace format revision this build writes by default. */
constexpr std::uint16_t traceFormatVersion = traceFormatV2;

/** Binary file magic ("SMTTRC", no terminator). */
constexpr char traceMagic[6] = {'S', 'M', 'T', 'T', 'R', 'C'};

/** v2 seek-index magic ("SMTIDX", no terminator). */
constexpr char traceIndexMagic[6] = {'S', 'M', 'T', 'I', 'D', 'X'};

/** Size in bytes of one packed binary record. */
constexpr std::size_t traceRecordBytes = 20;

/** @name v2 record-block codecs (one byte in the v2 header). */
/// @{
constexpr std::uint8_t traceCodecRaw = 0;     //!< stored verbatim
constexpr std::uint8_t traceCodecDeflate = 1; //!< zlib deflate
/** Writer-option sentinel: deflate when built with zlib, else raw. */
constexpr std::uint8_t traceCodecAuto = 0xff;
/// @}

/** Can this build decode blocks stored with `codec`? */
bool traceCodecAvailable(std::uint8_t codec);

/** Human-readable codec name ("raw", "deflate", ...). */
const char *traceCodecName(std::uint8_t codec);

/** Records per full v2 block (80 KB of raw payload). */
constexpr std::uint32_t traceBlockRecordsDefault = 4096;

/**
 * Trace file header: everything needed to rebuild the benchmark image
 * the records were captured against (buildImage is deterministic in
 * profile, bases and seed, so replay reconstructs the identical
 * program and wrong-path dictionary).
 */
struct TraceFileHeader
{
    std::string benchmark;       //!< profile name ("gzip", ...)
    std::uint16_t version = traceFormatVersion;
    std::uint64_t seed = 0;      //!< buildImage seed salt
    Addr codeBase = 0;           //!< program base address
    Addr dataBase = 0;           //!< data region base address
    std::uint64_t recordCount = 0;
    bool text = false;           //!< encoding of the backing file

    /** @name v2-only fields (defaults describe a v1 file). */
    /// @{
    std::uint8_t codec = traceCodecRaw;
    std::uint32_t blockRecords = 0; //!< records per full block
    std::uint64_t blockCount = 0;
    std::uint64_t indexOffset = 0;  //!< file offset of the seek index
    /// @}
};

/**
 * One decoded trace record, independent of any program image. The
 * binary encoding packs pc/nextPc as 32-bit word offsets from
 * codeBase, one info byte (op kind, CTI direction, mem-class flag),
 * the register-dependency depth and the memory effective address.
 */
struct PackedTraceRecord
{
    Addr pc = invalidAddr;
    Addr nextPc = invalidAddr;
    Addr memAddr = invalidAddr;  //!< invalidAddr when not a mem op
    OpClass kind = OpClass::IntAlu;
    bool taken = false;
    std::uint8_t depDepth = 0;   //!< register source-operand count
};

/** Does the path name the text encoding (`.strc`)? */
bool traceFileIsText(const std::string &path);

/** Knobs for TraceWriter: format revision, codec, block size. */
struct TraceWriteOptions
{
    /** traceFormatV1 or traceFormatV2 (binary encodings only). */
    std::uint16_t version = traceFormatVersion;

    /** v2 block codec; traceCodecAuto resolves per build. */
    std::uint8_t codec = traceCodecAuto;

    /** v2 records per full block (the steady-state buffer size). */
    std::uint32_t blockRecords = traceBlockRecordsDefault;
};

/**
 * Streaming trace capture. The encoding follows the path's extension.
 * The header's recordCount (and, for v2, the block index) is patched
 * on close(); for text the buffered records are flushed then;
 * destruction closes. Binary v2 buffers at most one record block,
 * so capture memory stays O(block) regardless of trace length.
 */
class TraceWriter
{
  public:
    TraceWriter(const std::string &path, const TraceFileHeader &header,
                const TraceWriteOptions &options = TraceWriteOptions{});
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append a live record (packs pc/kind/deps from rec.si). */
    void append(const TraceRecord &rec);

    /** Append an already-packed record (tests, transcoding). */
    void append(const PackedTraceRecord &rec);

    /** Finish the file; idempotent. TraceFileError on I/O failure. */
    void close();

    std::uint64_t recordsWritten() const { return count; }
    const std::string &path() const { return filePath; }

  private:
    [[noreturn]] void fail(const std::string &what) const;

    /** Frame (and compress) the buffered v2 block to disk. */
    void flushBlock();

    std::string filePath;
    TraceFileHeader hdr;
    std::ofstream os;
    std::uint64_t count = 0;
    bool closed = false;

    /** One buffered v2 record block (encoded, uncompressed). */
    std::string blockBuf;
    std::uint32_t blockBuffered = 0; //!< records in blockBuf

    /** v2 seek index accumulated as blocks flush. */
    struct IndexEntry
    {
        std::uint64_t fileOffset;
        std::uint64_t firstRecord;
    };
    std::vector<IndexEntry> index;

    /** Text records buffered until close (fixtures are small). */
    std::vector<PackedTraceRecord> textRecords;
};

/**
 * Sequential trace decoder for every on-disk revision. The
 * constructor validates the whole header — including that the record
 * count agrees with the file size (v1) or that the block index is
 * self-consistent (v2) — so corruption surfaces before any
 * simulation starts. v2 payloads decode one block at a time: memory
 * stays O(block) however long the trace is. Every malformed-input
 * error names the file and the byte offset of the offending data.
 */
class TraceReader
{
  public:
    /**
     * @param header_only Validate and expose the header without
     *        decoding records (next() then reports end-of-trace);
     *        spares re-tokenizing every line of a text trace when
     *        only the header is needed (readTraceHeader).
     */
    explicit TraceReader(const std::string &path,
                         bool header_only = false);

    const TraceFileHeader &header() const { return hdr; }

    /**
     * Decode the next record. @return false at the clean end of the
     * trace; throws TraceFileError on any corruption.
     */
    bool next(PackedTraceRecord &out);

    /**
     * Reposition so the next next() call delivers record
     * `record_index` (== recordCount positions at end-of-trace).
     * O(1) for v1 (fixed-stride records) and v2 (seek index); a
     * TraceFileError past the end of the trace.
     */
    void skipTo(std::uint64_t record_index);

    std::uint64_t recordsRead() const { return count; }
    const std::string &path() const { return filePath; }

  private:
    [[noreturn]] void fail(const std::string &what) const;

    void readBinaryHeader();
    void readV2Extension(std::uint64_t file_size);
    void readV2Index(std::uint64_t file_size);
    void loadBlock(std::uint64_t block);
    void decodeRecord(const unsigned char *buf,
                      PackedTraceRecord &out);
    void parseText(bool header_only);

    std::string filePath;
    TraceFileHeader hdr;
    std::ifstream is;
    std::uint64_t count = 0;
    bool headerOnly = false;

    /** File offset for error messages (next unread structure). */
    std::uint64_t errOffset = 0;

    /** End of the (v1-compatible + v2 extension) header. */
    std::uint64_t headerBytes = 0;

    /** @name v2 streaming state. */
    /// @{
    struct IndexEntry
    {
        std::uint64_t fileOffset;
        std::uint64_t firstRecord;
    };
    std::vector<IndexEntry> index;
    std::string blockData;           //!< current decoded block
    std::string blockScratch;        //!< compressed frame scratch
    std::uint64_t curBlock = 0;      //!< index of loaded block + 1
    std::uint64_t blockFirst = 0;    //!< first record of the block
    std::uint32_t blockLen = 0;      //!< records in the block
    std::uint32_t blockPos = 0;      //!< next record within it
    /// @}

    /** Text encoding is fully parsed up front (fixture-sized). */
    std::vector<PackedTraceRecord> textRecords;
};

/** Parse just the header of a trace file (workload construction). */
TraceFileHeader readTraceHeader(const std::string &path);

/**
 * Replays a recorded trace file as a TraceSource. The image must be
 * the one named by the file's header (same profile, bases and seed) —
 * the constructor cross-checks and every delivered record is validated
 * against the static program, so a trace/program mismatch is an error,
 * not silent divergence.
 */
class FileTraceStream : public TraceSource
{
  public:
    /** @param image Must outlive the stream. */
    FileTraceStream(const BenchmarkImage &image,
                    const std::string &path);

    const TraceFileHeader &header() const { return reader.header(); }

    /**
     * @name Checkpoint serialization: the base replay state plus the
     * file position, re-established on restore by skipping the
     * already-generated prefix of the (deterministic) trace file.
     */
    /// @{
    void save(CheckpointWriter &w) const override;
    void restore(CheckpointReader &r) override;
    /// @}

  protected:
    TraceRecord generate() override;

  private:
    TraceReader reader;
};

} // namespace smt

#endif // SMTFETCH_WORKLOAD_TRACE_FILE_HH
