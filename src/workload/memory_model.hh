/**
 * @file
 * Per-static-instruction data address generators.
 *
 * Each static load/store owns a MemoryModel that deterministically
 * produces its dynamic address stream:
 *
 *  - Stride: sequential walk through a small region (cache friendly).
 *  - RandomWS: uniform within the benchmark's working set; misses the
 *    caches once the working set exceeds their capacity.
 *  - Chase: like RandomWS, but the program builder also threads a true
 *    register dependence through consecutive chase loads, yielding the
 *    serialized pointer-chasing behaviour of mcf/twolf.
 */

#ifndef SMTFETCH_WORKLOAD_MEMORY_MODEL_HH
#define SMTFETCH_WORKLOAD_MEMORY_MODEL_HH

#include <cstdint>

#include "util/types.hh"

namespace smt
{

class CheckpointReader;
class CheckpointWriter;

/** Deterministic address generator for one static load or store. */
class MemoryModel
{
  public:
    enum class Kind : unsigned char { Stride, RandomWS, Chase };

    MemoryModel() = default;

    /**
     * @param region_base First byte of the region this generator uses.
     * @param region_bytes Region size (power of two not required).
     * @param stride Byte stride for Kind::Stride.
     */
    static MemoryModel makeStride(Addr region_base, Addr region_bytes,
                                  unsigned stride);

    /**
     * Random access with hot/cold locality: a `hot_prob` fraction of
     * accesses fall in the first `hot_bytes` of the region (temporal
     * locality), the rest anywhere in it.
     */
    static MemoryModel makeRandom(Addr region_base, Addr region_bytes,
                                  Addr hot_bytes, double hot_prob,
                                  std::uint64_t seed);
    static MemoryModel makeChase(Addr region_base, Addr region_bytes,
                                 Addr hot_bytes, double hot_prob,
                                 std::uint64_t seed);

    /** Next dynamic effective address (8-byte aligned). */
    Addr next();

    Kind kind() const { return modelKind; }

    /** @name Checkpoint serialization of the mutable state (the
     *  static shape is rebuilt from the image; sim/checkpoint.hh). */
    /// @{
    void save(CheckpointWriter &w) const;
    void restore(CheckpointReader &r);
    /// @}

  private:
    Kind modelKind = Kind::Stride;
    Addr base = 0;
    Addr bytes = 64;
    Addr hotBytes = 64;
    std::uint32_t hotThreshold = 0;
    unsigned stride = 8;
    Addr offset = 0;
    std::uint64_t seed = 0;
    std::uint64_t execCount = 0;
};

} // namespace smt

#endif // SMTFETCH_WORKLOAD_MEMORY_MODEL_HH
