#include "workload/trace.hh"

#include "util/bitfield.hh"
#include "util/logging.hh"
#include "workload/trace_file.hh"

namespace smt
{

const TraceRecord &
TraceSource::peek()
{
    if (nextIndex < generatedCount)
        return ring[nextIndex % replayWindow];
    ensureUpcoming();
    return upcoming;
}

TraceRecord
TraceSource::next()
{
    if (nextIndex < generatedCount) {
        // Replaying after a rewind.
        return ring[nextIndex++ % replayWindow];
    }

    ensureUpcoming();
    TraceRecord rec = upcoming;
    haveUpcoming = false;

    ++tstats.insts;
    if (rec.si->isControl()) {
        ++tstats.ctis;
        if (rec.taken)
            ++tstats.takenCtis;
        if (rec.si->isConditional()) {
            ++tstats.condBranches;
            if (rec.taken)
                ++tstats.takenCond;
        }
    }
    if (rec.si->isLoad())
        ++tstats.loads;
    if (rec.si->isStore())
        ++tstats.stores;

    ring[generatedCount % replayWindow] = rec;
    ++generatedCount;
    ++nextIndex;

    if (recorder != nullptr)
        recorder->append(rec);

    return rec;
}

void
TraceSource::rewindTo(std::uint64_t index)
{
    if (index > nextIndex)
        panic("trace rewind forward: %llu > %llu",
              (unsigned long long)index,
              (unsigned long long)nextIndex);
    if (generatedCount - index > replayWindow)
        panic("trace rewind beyond replay window");
    nextIndex = index;
}

void
TraceSource::ensureUpcoming()
{
    if (haveUpcoming)
        return;
    upcoming = generate();
    haveUpcoming = true;
}

SyntheticTraceStream::SyntheticTraceStream(const BenchmarkImage &image)
    : TraceSource(image), branchModels(image.branchModels),
      indirectModels(image.indirectModels), memModels(image.memModels),
      pc(image.program.entry())
{
}

TraceRecord
SyntheticTraceStream::generate()
{
    const StaticInst *si = img.program.lookup(pc);
    if (si == nullptr)
        panic("correct path left program code at 0x%llx (%s)",
              (unsigned long long)pc, img.profile.name.c_str());

    TraceRecord rec;
    rec.si = si;
    rec.taken = false;
    rec.nextPc = si->nextPc();
    rec.memAddr = invalidAddr;

    switch (si->op) {
      case OpClass::CondBranch: {
        bool taken = branchModels[si->modelId].next(oracleHistory,
                                                    oraclePathSig);
        oracleHistory = (oracleHistory << 1) | (taken ? 1 : 0);
        rec.taken = taken;
        if (taken)
            rec.nextPc = si->target;
        break;
      }
      case OpClass::Jump:
        rec.taken = true;
        rec.nextPc = si->target;
        break;
      case OpClass::CallDirect:
        rec.taken = true;
        rec.nextPc = si->target;
        if (callStack.size() < maxCallDepth)
            callStack.push_back(si->nextPc());
        break;
      case OpClass::Return:
        rec.taken = true;
        if (!callStack.empty()) {
            rec.nextPc = callStack.back();
            callStack.pop_back();
        } else {
            // Defensive: a return with no frame restarts the driver.
            rec.nextPc = img.program.entry();
        }
        break;
      case OpClass::JumpIndirect:
        rec.taken = true;
        rec.nextPc = indirectModels[si->modelId].next();
        break;
      case OpClass::Load:
      case OpClass::Store:
        rec.memAddr = memModels[si->modelId].next();
        break;
      default:
        break;
    }

    // Track the oracle path signature: packed targets of recent taken
    // CTIs, most recent in the low bits.
    if (rec.taken) {
        oraclePathSig =
            (oraclePathSig << pathSigBitsPerTarget) |
            ((rec.nextPc >> 2) & mask(pathSigBitsPerTarget));
    }

    pc = rec.nextPc;
    return rec;
}

} // namespace smt
