#include "workload/trace.hh"

#include "sim/checkpoint.hh"
#include "util/bitfield.hh"
#include "util/logging.hh"
#include "workload/trace_file.hh"

namespace smt
{

const TraceRecord &
TraceSource::peek()
{
    if (nextIndex < generatedCount)
        return ring[nextIndex % replayWindow];
    ensureUpcoming();
    return upcoming;
}

const TraceRecord &
TraceSource::peekAhead(std::uint64_t offset)
{
    std::uint64_t pos = nextIndex + offset;
    if (pos < generatedCount) {
        // Replaying after a rewind: the record is still in the ring
        // (anything reachable from nextIndex is inside the window).
        return ring[pos % replayWindow];
    }
    ensureUpcoming();
    if (pos == generatedCount)
        return upcoming;
    std::uint64_t k = pos - generatedCount - 1;
    while (lookahead.size() <= k)
        lookahead.push_back(generate());
    return lookahead[k];
}

TraceRecord
TraceSource::next()
{
    if (nextIndex < generatedCount) {
        // Replaying after a rewind.
        return ring[nextIndex++ % replayWindow];
    }

    ensureUpcoming();
    TraceRecord rec = upcoming;
    haveUpcoming = false;

    ++tstats.insts;
    if (rec.si->isControl()) {
        ++tstats.ctis;
        if (rec.taken)
            ++tstats.takenCtis;
        if (rec.si->isConditional()) {
            ++tstats.condBranches;
            if (rec.taken)
                ++tstats.takenCond;
        }
    }
    if (rec.si->isLoad())
        ++tstats.loads;
    if (rec.si->isStore())
        ++tstats.stores;

    ring[generatedCount % replayWindow] = rec;
    ++generatedCount;
    ++nextIndex;

    if (recorder != nullptr)
        recorder->append(rec);

    return rec;
}

void
TraceSource::rewindTo(std::uint64_t index)
{
    if (index > nextIndex)
        panic("trace rewind forward: %llu > %llu",
              (unsigned long long)index,
              (unsigned long long)nextIndex);
    if (generatedCount - index > replayWindow)
        panic("trace rewind beyond replay window");
    nextIndex = index;
}

void
TraceSource::ensureUpcoming()
{
    if (haveUpcoming)
        return;
    if (!lookahead.empty()) {
        upcoming = lookahead.front();
        lookahead.pop_front();
    } else {
        upcoming = generate();
    }
    haveUpcoming = true;
}

namespace
{

/** TraceRecord codec: the StaticInst round-trips as its PC. */
void
saveRecord(CheckpointWriter &w, const TraceRecord &rec)
{
    w.u64(rec.si->pc);
    w.b(rec.taken);
    w.u64(rec.nextPc);
    w.u64(rec.memAddr);
}

TraceRecord
restoreRecord(CheckpointReader &r, const BenchmarkImage &img)
{
    TraceRecord rec;
    Addr pc = r.u64();
    rec.si = img.program.lookup(pc);
    if (rec.si == nullptr)
        r.fail(csprintf("trace record pc 0x%llx is not mapped in "
                        "the rebuilt program — the checkpoint does "
                        "not match this workload image",
                        (unsigned long long)pc));
    rec.taken = r.b();
    rec.nextPc = r.u64();
    rec.memAddr = r.u64();
    return rec;
}

} // namespace

void
TraceSource::saveBase(CheckpointWriter &w) const
{
    w.u64(tstats.insts);
    w.u64(tstats.ctis);
    w.u64(tstats.condBranches);
    w.u64(tstats.takenCtis);
    w.u64(tstats.takenCond);
    w.u64(tstats.loads);
    w.u64(tstats.stores);
    w.u64(generatedCount);
    w.u64(nextIndex);
    w.b(haveUpcoming);
    if (haveUpcoming)
        saveRecord(w, upcoming);
    w.u32(static_cast<std::uint32_t>(lookahead.size()));
    for (const TraceRecord &rec : lookahead)
        saveRecord(w, rec);
    // Only the live replay window is needed: squashes can rewind at
    // most replayWindow records behind the generation frontier.
    std::uint64_t window_start =
        generatedCount > replayWindow ? generatedCount - replayWindow
                                      : 0;
    w.u64(window_start);
    for (std::uint64_t i = window_start; i < generatedCount; ++i)
        saveRecord(w, ring[i % replayWindow]);
}

void
TraceSource::restoreBase(CheckpointReader &r)
{
    if (nextIndex != 0 || generatedCount != 0)
        r.fail("trace-source restore requires a freshly-constructed "
               "stream");
    tstats.insts = r.u64();
    tstats.ctis = r.u64();
    tstats.condBranches = r.u64();
    tstats.takenCtis = r.u64();
    tstats.takenCond = r.u64();
    tstats.loads = r.u64();
    tstats.stores = r.u64();
    generatedCount = r.u64();
    nextIndex = r.u64();
    haveUpcoming = r.b();
    if (haveUpcoming)
        upcoming = restoreRecord(r, img);
    std::uint32_t nla = r.u32();
    // The oracle lookahead is bounded by what one FTQ can hold; a
    // huge count means a corrupt payload, not a deep lookahead.
    if (nla > 1u << 20)
        r.fail(csprintf("trace lookahead holds %u records (corrupt "
                        "payload)",
                        nla));
    lookahead.clear();
    for (std::uint32_t i = 0; i < nla; ++i)
        lookahead.push_back(restoreRecord(r, img));
    std::uint64_t window_start = r.u64();
    std::uint64_t expected_start =
        generatedCount > replayWindow ? generatedCount - replayWindow
                                      : 0;
    if (window_start != expected_start)
        r.fail(csprintf("replay window starts at %llu, expected "
                        "%llu (corrupt payload)",
                        (unsigned long long)window_start,
                        (unsigned long long)expected_start));
    if (nextIndex > generatedCount ||
        generatedCount - nextIndex > replayWindow)
        r.fail("trace position outside the replay window (corrupt "
               "payload)");
    for (std::uint64_t i = window_start; i < generatedCount; ++i)
        ring[i % replayWindow] = restoreRecord(r, img);
}

SyntheticTraceStream::SyntheticTraceStream(const BenchmarkImage &image)
    : TraceSource(image), branchModels(image.branchModels),
      indirectModels(image.indirectModels), memModels(image.memModels),
      pc(image.program.entry())
{
}

TraceRecord
SyntheticTraceStream::generate()
{
    const StaticInst *si = img.program.lookup(pc);
    if (si == nullptr)
        panic("correct path left program code at 0x%llx (%s)",
              (unsigned long long)pc, img.profile.name.c_str());

    TraceRecord rec;
    rec.si = si;
    rec.taken = false;
    rec.nextPc = si->nextPc();
    rec.memAddr = invalidAddr;

    switch (si->op) {
      case OpClass::CondBranch: {
        bool taken = branchModels[si->modelId].next(oracleHistory,
                                                    oraclePathSig);
        oracleHistory = (oracleHistory << 1) | (taken ? 1 : 0);
        rec.taken = taken;
        if (taken)
            rec.nextPc = si->target;
        break;
      }
      case OpClass::Jump:
        rec.taken = true;
        rec.nextPc = si->target;
        break;
      case OpClass::CallDirect:
        rec.taken = true;
        rec.nextPc = si->target;
        if (callStack.size() < maxCallDepth)
            callStack.push_back(si->nextPc());
        break;
      case OpClass::Return:
        rec.taken = true;
        if (!callStack.empty()) {
            rec.nextPc = callStack.back();
            callStack.pop_back();
        } else {
            // Defensive: a return with no frame restarts the driver.
            rec.nextPc = img.program.entry();
        }
        break;
      case OpClass::JumpIndirect:
        rec.taken = true;
        rec.nextPc = indirectModels[si->modelId].next();
        break;
      case OpClass::Load:
      case OpClass::Store:
        rec.memAddr = memModels[si->modelId].next();
        break;
      default:
        break;
    }

    // Track the oracle path signature: packed targets of recent taken
    // CTIs, most recent in the low bits.
    if (rec.taken) {
        oraclePathSig =
            (oraclePathSig << pathSigBitsPerTarget) |
            ((rec.nextPc >> 2) & mask(pathSigBitsPerTarget));
    }

    pc = rec.nextPc;
    return rec;
}

void
SyntheticTraceStream::save(CheckpointWriter &w) const
{
    saveBase(w);
    w.u64(pc);
    w.u32(static_cast<std::uint32_t>(callStack.size()));
    for (Addr a : callStack)
        w.u64(a);
    w.u64(oracleHistory);
    w.u64(oraclePathSig);
    w.u32(static_cast<std::uint32_t>(branchModels.size()));
    for (const BranchModel &m : branchModels)
        m.save(w);
    w.u32(static_cast<std::uint32_t>(indirectModels.size()));
    for (const IndirectModel &m : indirectModels)
        m.save(w);
    w.u32(static_cast<std::uint32_t>(memModels.size()));
    for (const MemoryModel &m : memModels)
        m.save(w);
}

void
SyntheticTraceStream::restore(CheckpointReader &r)
{
    restoreBase(r);
    pc = r.u64();
    std::uint32_t depth = r.u32();
    if (depth > maxCallDepth)
        r.fail(csprintf("call-stack depth %u exceeds the %zu cap",
                        depth, maxCallDepth));
    callStack.resize(depth);
    for (Addr &a : callStack)
        a = r.u64();
    oracleHistory = r.u64();
    oraclePathSig = r.u64();
    auto check_models = [&r](std::uint32_t n, std::size_t have,
                             const char *what) {
        if (n != have)
            r.fail(csprintf("%s model count %u does not match the "
                            "image's %zu — the checkpoint does not "
                            "match this workload image",
                            what, n, have));
    };
    check_models(r.u32(), branchModels.size(), "branch");
    for (BranchModel &m : branchModels)
        m.restore(r);
    check_models(r.u32(), indirectModels.size(), "indirect");
    for (IndirectModel &m : indirectModels)
        m.restore(r);
    check_models(r.u32(), memModels.size(), "memory");
    for (MemoryModel &m : memModels)
        m.restore(r);
}

} // namespace smt
