#include "sim/executor.hh"

#include <chrono>

#include "sim/checkpoint.hh"
#include "sim/simulator.hh"
#include "sim/snapshot_cache.hh"
#include "util/logging.hh"

namespace smt
{

namespace
{

using SteadyClock = std::chrono::steady_clock;

double
secondsSince(SteadyClock::time_point start)
{
    return std::chrono::duration<double>(SteadyClock::now() - start)
        .count();
}

ExperimentResult
resultFrom(const GridPoint &point, const ExecutorParams &params,
           const Simulator &sim)
{
    ExperimentResult r;
    r.workload = point.workload;
    r.engine = point.engine;
    r.policy = point.policy;
    r.fetchThreads = point.fetchThreads;
    r.fetchWidth = point.fetchWidth;
    r.overrides = point.overrides;
    r.warmupCycles = params.warmupCycles;
    r.measureCycles = params.measureCycles;
    r.stats = sim.stats();
    r.ipfc = r.stats.ipfc();
    r.ipc = r.stats.ipc();
    // The end-of-measurement snapshot, not the live registry: on
    // padded recording runs the live counters include pad activity.
    r.statsJson = sim.measuredStatsJson();
    return r;
}

} // namespace

SimConfig
PointExecutor::configFor(const GridPoint &point) const
{
    SimConfig cfg =
        table3Config(point.workload, point.engine, point.fetchThreads,
                     point.fetchWidth, point.policy);
    point.overrides.apply(cfg.core);
    cfg.core.cycleSkip = params.cycleSkip;
    cfg.warmupCycles = params.warmupCycles;
    cfg.measureCycles = params.measureCycles;
    cfg.seed = params.seed;
    cfg.recordPath = point.recordPath;
    cfg.recordPadCycles = point.recordPadCycles;
    return cfg;
}

std::string
PointExecutor::warmupKey(const GridPoint &point) const
{
    return warmupConfigKey(configFor(point));
}

bool
PointExecutor::reusable(const GridPoint &point)
{
    return point.recordPath.empty() &&
           point.saveCheckpointPath.empty() &&
           point.restoreCheckpointPath.empty();
}

PointOutcome
PointExecutor::runDirect(const GridPoint &point) const
{
    PointOutcome out;
    Simulator sim(configFor(point));
    if (!point.restoreCheckpointPath.empty()) {
        sim.restoreCheckpoint(point.restoreCheckpointPath);
    } else {
        sim.runWarmup();
        if (!point.saveCheckpointPath.empty())
            sim.saveCheckpoint(point.saveCheckpointPath);
    }
    auto measure_start = SteadyClock::now();
    sim.runMeasure();
    out.measureSeconds = secondsSince(measure_start);
    out.result = resultFrom(point, params, sim);
    out.direct = true;
    return out;
}

PointOutcome
PointExecutor::execute(const GridPoint &point) const
{
    if (cache == nullptr || !reusable(point))
        return runDirect(point);

    std::string key = warmupKey(point);
    auto acquired = cache->acquire(key, snapshotDir);

    if (acquired.snapshot) {
        Simulator sim(configFor(point));
        try {
            sim.restoreCheckpointFromString(*acquired.snapshot);
        } catch (const CheckpointError &e) {
            // Stale or corrupt cache entry (e.g. a config-hash
            // collision on the disk tier): warn and run this point
            // the plain way rather than aborting the sweep.
            warn("ignoring unusable warmup checkpoint: %s", e.what());
            return runDirect(point);
        }
        PointOutcome out;
        auto measure_start = SteadyClock::now();
        sim.runMeasure();
        out.measureSeconds = secondsSince(measure_start);
        out.result = resultFrom(point, params, sim);
        out.restored = true;
        out.diskHit = acquired.diskHit;
        return out;
    }

    // This point holds the key's warmup lease: run the warmup,
    // publish the snapshot, then keep measuring on the warm
    // simulator (it literally is the uninterrupted run).
    PointOutcome out;
    Simulator sim(configFor(point));
    try {
        auto warmup_start = SteadyClock::now();
        sim.runWarmup();
        out.warmupSeconds = secondsSince(warmup_start);
        cache->fulfil(key, sim.saveCheckpointToString(), snapshotDir);
    } catch (...) {
        cache->abandon(key);
        throw;
    }
    auto measure_start = SteadyClock::now();
    sim.runMeasure();
    out.measureSeconds = secondsSince(measure_start);
    out.result = resultFrom(point, params, sim);
    out.ranWarmup = true;
    return out;
}

} // namespace smt
