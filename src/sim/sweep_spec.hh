/**
 * @file
 * Declarative experiment specs: a JSON document naming workloads,
 * fetch engines, N.X policies, parameter overrides and measurement
 * windows expands into an ExperimentRunner grid. One spec file per
 * paper figure/table/ablation lives under configs/; the smtsim CLI
 * and the bench binaries both execute through this layer.
 */

#ifndef SMTFETCH_SIM_SWEEP_SPEC_HH
#define SMTFETCH_SIM_SWEEP_SPEC_HH

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sim/experiment.hh"
#include "util/json.hh"

namespace smt
{

/**
 * User-facing error in an experiment spec: unreadable file, schema
 * violation, or an unresolvable workload/engine/policy name. The
 * message names the offending key and the accepted values.
 */
class SpecError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** @name String-to-enum resolvers (SpecError on unknown names). */
/// @{
EngineKind engineKindFromString(const std::string &name);
PolicyKind policyKindFromString(const std::string &name);
LongLoadPolicy longLoadPolicyFromString(const std::string &name);
/// @}

/** Validate a Table 2 workload, bare benchmark, or "trace:" name. */
void validateWorkloadName(const std::string &name);

/**
 * Directory BENCH_*.json records land in: `dir_override` when
 * non-empty, else the SMTFETCH_JSON_DIR environment variable, else
 * the working directory.
 */
std::string benchRecordDir(const std::string &dir_override = "");

/**
 * Fail fast on an unwritable record directory: throws SpecError
 * naming the directory unless a file can actually be created in it.
 * The CLI calls this before running a grid so a typo'd --out-dir is
 * caught in milliseconds, not after minutes of simulation.
 */
void ensureWritableDir(const std::string &dir);

/**
 * Directory where specs are resolved by bare name: the
 * SMTFETCH_CONFIG_DIR environment variable when set, else the
 * build-time configs/ path.
 */
std::string defaultConfigDir();

/**
 * One block of a spec: the cross product of workloads, engines, N.X
 * policies, selection policies and override variants.
 */
struct SweepBlock
{
    std::vector<std::string> workloads;
    std::vector<EngineKind> engines;

    /** (fetchThreads, fetchWidth) pairs, spec order. */
    std::vector<std::pair<unsigned, unsigned>> policies;

    std::vector<PolicyKind> selections = {PolicyKind::ICount};
    std::vector<RunOverrides> overrides = {RunOverrides{}};
};

/** What a spec asks the simulator to produce. */
enum class SpecType : unsigned char
{
    Grid,            //!< (workload x engine x policy) simulations
    Characteristics, //!< Table 1 trace-model statistics
};

/** A parsed experiment spec. */
struct SweepSpec
{
    std::string name;
    SpecType type = SpecType::Grid;

    Cycle warmupCycles = 50'000;
    Cycle measureCycles = 300'000;
    std::uint64_t seed = 0;

    /** BENCH_<benchName()>.json record name; defaults to name. */
    std::string output;

    /** Instructions traced per benchmark (characteristics mode). */
    std::uint64_t instructions = 400'000;

    /**
     * Warmup-snapshot sharing: run the warmup once per unique
     * (workload, core-configuration) group, checkpoint the simulator,
     * and restore the snapshot for every other grid point in the
     * group (see SweepRequest::reuseWarmup). Bit-identical to the
     * plain path.
     */
    bool checkpointAfterWarmup = false;

    /**
     * Event-driven cycle skipping (default on; results are
     * bit-identical either way). `smtsim --no-cycle-skip` clears it
     * for debugging.
     */
    bool cycleSkip = true;

    /** Persist warmup snapshots here for reuse across sweeps (keyed
     *  by configuration hash); implies checkpointAfterWarmup. */
    std::string checkpointDir;

    /**
     * Run this spec across N spawned `smtsim worker` processes
     * instead of in-process threads ({"distributed": {"workers":
     * N}}). Honoured by `smtsim sweep` and the serve daemon; the
     * plain `smtsim <spec>` runner ignores it. With a checkpointDir
     * the run journals completed points there and resumes after a
     * kill. 0 = not distributed.
     */
    unsigned distributedWorkers = 0;

    std::vector<SweepBlock> sweeps;

    std::string
    benchName() const
    {
        return output.empty() ? name : output;
    }

    /** Expand every sweep block into runnable grid points. */
    std::vector<GridPoint> expand() const;

    /**
     * The full SweepRequest this spec describes: the expanded grid
     * plus windows, seed, cycle-skip and warmup-reuse settings. Both
     * frontends — `smtsim <spec>` and the serve daemon — run exactly
     * this request, so a spec accepted by one behaves identically on
     * the other.
     */
    SweepRequest makeRequest() const;

    /** @name Construction (SpecError on any schema problem). */
    /// @{
    static SweepSpec fromJson(const JsonValue &doc,
                              const std::string &context);
    static SweepSpec fromString(const std::string &text,
                                const std::string &context = "<spec>");
    static SweepSpec fromFile(const std::string &path);
    /// @}
};

/**
 * Expand and run a grid spec through the parallel runner, honouring
 * the spec's warmup-reuse settings. The report carries both the
 * per-point results and the sweep's wall-clock accounting for the
 * bench record.
 */
SweepReport runSpec(const SweepSpec &spec);

/** Table 1 row: synthetic-model statistics for one benchmark. */
struct BenchmarkCharacteristics
{
    std::string benchmark;
    bool ilp = true;           //!< Table 1 class (ILP vs MEM)
    double paperBlockSize = 0; //!< Table 1 reference value
    double blockSize = 0;      //!< dynamic insts per CTI
    double streamLength = 0;   //!< dynamic insts per taken CTI
    double takenRate = 0;
    double loadFraction = 0;
};

/** Trace every benchmark profile for a characteristics spec. */
std::vector<BenchmarkCharacteristics>
runCharacteristics(std::uint64_t instructions);

/** Flatten characteristics rows into BENCH-record metric pairs. */
std::vector<std::pair<std::string, double>>
characteristicsMetrics(const std::vector<BenchmarkCharacteristics> &rows);

/**
 * Write a BENCH_<bench>.json record. The directory defaults to the
 * working directory, overridable by dir_override or the
 * SMTFETCH_JSON_DIR environment variable; SMTFETCH_NO_JSON=1 skips
 * emission. Returns false when the file cannot be written.
 */
bool writeBenchRecord(
    const std::string &bench,
    const std::vector<ExperimentResult> &results,
    const std::vector<std::pair<std::string, double>> &metrics = {},
    const std::string &dir_override = "",
    const SweepTiming *timing = nullptr);

} // namespace smt

#endif // SMTFETCH_SIM_SWEEP_SPEC_HH
