/**
 * @file
 * The sweep request/report API: a SweepRequest names the grid points
 * plus the measurement windows and warmup-sharing policy, a
 * SweepReport carries every point's results and the sweep's measured
 * accounting. ExperimentRunner is a thin facade that feeds a request
 * through the scheduler/executor pair (sim/scheduler.hh,
 * sim/executor.hh) and renders paper-figure tables and BENCH_*.json
 * records; the serve daemon drives the same scheduler directly with a
 * shared process-wide snapshot cache.
 */

#ifndef SMTFETCH_SIM_EXPERIMENT_HH
#define SMTFETCH_SIM_EXPERIMENT_HH

#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "core/sim_stats.hh"
#include "sim/sim_config.hh"

namespace smt
{

class JsonWriter;
class WarmupSnapshotCache;

/**
 * Optional per-run deviations from the Table 3 baseline, used by the
 * ablation sweeps (FTQ depth, predictor budget, long-latency-load
 * policy) and by spec-driven grids.
 */
struct RunOverrides
{
    std::optional<unsigned> ftqEntries;
    std::optional<unsigned> fetchBufferSize;
    std::optional<unsigned> robEntries;
    std::optional<LongLoadPolicy> longLoadPolicy;
    std::optional<Cycle> longLoadThreshold;

    /**
     * Right-shift applied to every predictor table size (the Table 3
     * ~45KB budget halves per step; the A2 ablation sweep).
     */
    unsigned predictorShift = 0;

    /**
     * Engine-parameter overrides resolved through the engine
     * registry's schemas (EngineRegistry::findParam): ordered
     * (spec key, value) pairs applied to EngineParams after the
     * structural overrides, before predictorShift. Booleans are
     * carried as 0/1.
     */
    std::vector<std::pair<std::string, std::uint64_t>> engineParams;

    bool operator==(const RunOverrides &o) const = default;

    /** True when any field deviates from the baseline. */
    bool any() const;

    /** Apply the overrides to a core configuration. */
    void apply(CoreParams &core) const;

    /** Compact "ftq=4 llp=stall" rendering; empty when default. */
    std::string describe() const;

    /** Emit the non-default fields as JSON object members. */
    void writeJson(JsonWriter &jw) const;
};

/** One point of a sweep grid. */
struct GridPoint
{
    std::string workload;
    EngineKind engine;
    unsigned fetchThreads;
    unsigned fetchWidth;
    PolicyKind policy = PolicyKind::ICount;
    RunOverrides overrides{};

    /** Capture the run's correct-path streams to this trace
     *  file when non-empty (smtsim --record). */
    std::string recordPath;

    /** Extra capture cycles after measurement (--record-pad). */
    Cycle recordPadCycles = 0;

    /** Save a post-warmup checkpoint here (--save-checkpoint). */
    std::string saveCheckpointPath;

    /** Skip warmup by restoring this checkpoint
     *  (--restore-checkpoint). */
    std::string restoreCheckpointPath;
};

/** One grid point's results. */
struct ExperimentResult
{
    std::string workload;
    EngineKind engine = EngineKind::GshareBtb;
    PolicyKind policy = PolicyKind::ICount;
    unsigned fetchThreads = 1;
    unsigned fetchWidth = 8;
    RunOverrides overrides{};

    Cycle warmupCycles = 0;
    Cycle measureCycles = 0;

    double ipfc = 0.0;
    double ipc = 0.0;
    SimStats stats;

    /**
     * Compact JSON object with every registered stat (the core's
     * StatsRegistry dump at the end of the run).
     */
    std::string statsJson;

    /** "1.8" / "2.16" policy suffix. */
    std::string policyDotString() const;
};

/**
 * Everything one sweep run needs: the expanded grid plus the
 * execution parameters shared by every point. The single entry point
 * is ExperimentRunner::run(request) (or SweepScheduler::submit for
 * queued/concurrent execution); there are no positional per-point
 * overloads — a one-point sweep is a one-element `points` vector.
 */
struct SweepRequest
{
    std::vector<GridPoint> points;

    Cycle warmupCycles = 50'000;
    Cycle measureCycles = 300'000;
    std::uint64_t seed = 0;

    /** Event-driven cycle skipping (bit-identical either way). */
    bool cycleSkip = true;

    /**
     * Warmup-snapshot sharing: group points by warmup configuration
     * key, simulate each distinct warmup once (process-wide when a
     * shared WarmupSnapshotCache is installed), and restore the
     * snapshot for every other point. Results are bit-identical to
     * the plain path. Implied by a non-empty checkpointDir.
     */
    bool reuseWarmup = false;

    /** Persistent snapshot tier reused across sweeps and processes;
     *  empty keeps snapshots in memory only. */
    std::string checkpointDir;

    /** Warmup sharing is in effect for this request. */
    bool
    reuseEnabled() const
    {
        return reuseWarmup || !checkpointDir.empty();
    }
};

/** End-to-end accounting for a sweep (the bench-record blocks). */
struct SweepTiming
{
    std::size_t gridPoints = 0;
    std::size_t warmupGroups = 0;  //!< distinct warmup keys
    std::size_t warmupRuns = 0;    //!< warmups actually executed
    std::size_t restoredRuns = 0;  //!< points served by restore
    std::size_t directRuns = 0;    //!< points outside the reuse
                                   //!< path (recording, explicit
                                   //!< checkpoint flags)

    /** Points satisfied from a resume journal without simulating
     *  anything (distributed sweeps only; counted inside
     *  completedPoints but NOT inside warmup/restored/direct). */
    std::size_t journaledPoints = 0;
    double warmupSeconds = 0;      //!< wall clock inside warmups
    double sweepSeconds = 0;       //!< wall clock of the sweep

    /** Warmup sharing was active (the `warmupReuse` JSON block
     *  is only meaningful — and only emitted — when true). */
    bool reuseEnabled = false;

    /** @name Snapshot-cache accounting (reuse path only): restored
     *  points split by serving tier, plus the evictions the serving
     *  cache performed over this sweep's lifetime (exact for a
     *  single-process run; a lower bound under concurrent sweeps
     *  sharing the daemon's cache). */
    /// @{
    std::uint64_t cacheHits = 0;      //!< memory-tier restores
    std::uint64_t cacheDiskHits = 0;  //!< disk-tier restores
    std::uint64_t cacheEvictions = 0; //!< LRU evictions over the run
    /// @}

    /** @name Simulation-throughput accounting (the `throughput`
     *  JSON block): wall clock spent inside the measurement
     *  windows and the work simulated in them. */
    /// @{
    double measureSeconds = 0;        //!< wall clock in measure
    std::uint64_t simulatedCycles = 0; //!< measured-window cycles
    std::uint64_t committedInsts = 0;  //!< insts committed in them

    /** Event-driven cycle skipping across the measured windows
     *  (all zero with skipping disabled). */
    std::uint64_t cyclesSkipped = 0;   //!< fast-forwarded cycles
    std::uint64_t sleepEvents = 0;     //!< quiescent spans jumped
    std::uint64_t maxSkipSpan = 0;     //!< longest single jump
    /// @}
};

/** A finished sweep: per-point results in grid order plus timing. */
struct SweepReport
{
    std::vector<ExperimentResult> results;
    SweepTiming timing;
};

/**
 * Facade over the scheduler/executor pair: runs one SweepRequest to
 * completion across host threads and renders results. Construct with
 * a WarmupSnapshotCache to share warmup snapshots beyond a single
 * run() call (the serve daemon's process-wide cache); the default
 * constructor gives every reuse-enabled run a private cache.
 */
class ExperimentRunner
{
  public:
    ExperimentRunner() = default;
    explicit ExperimentRunner(WarmupSnapshotCache &shared_cache)
        : sharedCache(&shared_cache)
    {
    }

    /** Run a whole request, parallelized across host threads. */
    SweepReport run(const SweepRequest &request) const;

    /**
     * Render a figure: one row per (workload, policy) group, one
     * column per engine, values IPFC or IPC.
     */
    static void printFigure(std::ostream &os, const std::string &title,
                            const std::vector<ExperimentResult> &results,
                            bool fetch_throughput);

    /**
     * Write a machine-readable record for a bench run: one JSON
     * document with bench metadata, every grid point's metrics and
     * full stats, and optional ad-hoc named metrics (the BENCH_*.json
     * format).
     */
    static void
    writeJson(std::ostream &os, const std::string &bench,
              const std::vector<ExperimentResult> &results,
              const std::vector<std::pair<std::string, double>>
                  &metrics = {},
              const SweepTiming *timing = nullptr);

  private:
    WarmupSnapshotCache *sharedCache = nullptr;
};

/**
 * Every registered engine in registry order (the three paper engines
 * first, then the zoo). Defined in bpred/engine_registry.cc alongside
 * paperEngines(), the paper trio; re-declared here because nearly
 * every sweep caller already includes this header.
 */
const std::vector<EngineKind> &allEngines();

/** The three engines the paper compares, in figure order. */
const std::vector<EngineKind> &paperEngines();

} // namespace smt

#endif // SMTFETCH_SIM_EXPERIMENT_HH
