/**
 * @file
 * Experiment runner: executes (workload x engine x policy) grids and
 * renders paper-figure tables. Runs are parallelized across hardware
 * threads since each simulation is independent and deterministic.
 */

#ifndef SMTFETCH_SIM_EXPERIMENT_HH
#define SMTFETCH_SIM_EXPERIMENT_HH

#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "core/sim_stats.hh"
#include "sim/sim_config.hh"

namespace smt
{

class JsonWriter;

/**
 * Optional per-run deviations from the Table 3 baseline, used by the
 * ablation sweeps (FTQ depth, predictor budget, long-latency-load
 * policy) and by spec-driven grids.
 */
struct RunOverrides
{
    std::optional<unsigned> ftqEntries;
    std::optional<unsigned> fetchBufferSize;
    std::optional<unsigned> robEntries;
    std::optional<LongLoadPolicy> longLoadPolicy;
    std::optional<Cycle> longLoadThreshold;

    /**
     * Right-shift applied to every predictor table size (the Table 3
     * ~45KB budget halves per step; the A2 ablation sweep).
     */
    unsigned predictorShift = 0;

    bool operator==(const RunOverrides &o) const = default;

    /** True when any field deviates from the baseline. */
    bool any() const;

    /** Apply the overrides to a core configuration. */
    void apply(CoreParams &core) const;

    /** Compact "ftq=4 llp=stall" rendering; empty when default. */
    std::string describe() const;

    /** Emit the non-default fields as JSON object members. */
    void writeJson(JsonWriter &jw) const;
};

/** One grid point's results. */
struct ExperimentResult
{
    std::string workload;
    EngineKind engine = EngineKind::GshareBtb;
    PolicyKind policy = PolicyKind::ICount;
    unsigned fetchThreads = 1;
    unsigned fetchWidth = 8;
    RunOverrides overrides{};

    Cycle warmupCycles = 0;
    Cycle measureCycles = 0;

    double ipfc = 0.0;
    double ipc = 0.0;
    SimStats stats;

    /**
     * Compact JSON object with every registered stat (the core's
     * StatsRegistry dump at the end of the run).
     */
    std::string statsJson;

    /** "1.8" / "2.16" policy suffix. */
    std::string policyDotString() const;
};

/** Runs simulation grids with shared warmup/measure windows. */
class ExperimentRunner
{
  public:
    ExperimentRunner(Cycle warmup = 50'000, Cycle measure = 300'000,
                     std::uint64_t seed = 0, bool cycle_skip = true);

    /** Run one configuration. */
    ExperimentResult run(const std::string &workload_name,
                         EngineKind engine, unsigned fetch_threads,
                         unsigned fetch_width,
                         PolicyKind policy = PolicyKind::ICount) const;

    /** Grid point descriptor for runAll. */
    struct GridPoint
    {
        std::string workload;
        EngineKind engine;
        unsigned fetchThreads;
        unsigned fetchWidth;
        PolicyKind policy = PolicyKind::ICount;
        RunOverrides overrides{};

        /** Capture the run's correct-path streams to this trace
         *  file when non-empty (smtsim --record). */
        std::string recordPath;

        /** Extra capture cycles after measurement (--record-pad). */
        Cycle recordPadCycles = 0;

        /** Save a post-warmup checkpoint here (--save-checkpoint). */
        std::string saveCheckpointPath;

        /** Skip warmup by restoring this checkpoint
         *  (--restore-checkpoint). */
        std::string restoreCheckpointPath;
    };

    /** Run one grid point, applying its parameter overrides. */
    ExperimentResult run(const GridPoint &point) const;

    /** Run a whole grid, parallelized across host threads. */
    std::vector<ExperimentResult>
    runAll(const std::vector<GridPoint> &points) const;

    /**
     * Warmup-sharing policy for runAll: when enabled, grid points are
     * grouped by their warmup configuration key (workload + seed +
     * warmup window + full core configuration); each group runs its
     * warmup once, snapshots the simulator, and restores the snapshot
     * for every other point in the group. With a checkpointDir the
     * snapshots additionally persist on disk keyed by configuration
     * hash, so later sweeps (or re-runs) sharing a configuration skip
     * the warmup entirely. Results are bit-identical to the plain
     * path in either mode.
     */
    struct WarmupReuse
    {
        bool enabled = false;

        /** On-disk snapshot cache; empty keeps snapshots in memory
         *  (shared within this runAll call only). */
        std::string checkpointDir;
    };

    /** End-to-end accounting for a runAll sweep (bench JSON). */
    struct SweepTiming
    {
        std::size_t gridPoints = 0;
        std::size_t warmupGroups = 0;  //!< distinct warmup keys
        std::size_t warmupRuns = 0;    //!< warmups actually executed
        std::size_t restoredRuns = 0;  //!< points served by restore
        std::size_t directRuns = 0;    //!< points outside the reuse
                                       //!< path (recording, explicit
                                       //!< checkpoint flags)
        double warmupSeconds = 0;      //!< wall clock inside warmups
        double sweepSeconds = 0;       //!< wall clock of the sweep

        /** Warmup sharing was active (the `warmupReuse` JSON block
         *  is only meaningful — and only emitted — when true). */
        bool reuseEnabled = false;

        /** @name Simulation-throughput accounting (the `throughput`
         *  JSON block): wall clock spent inside the measurement
         *  windows and the work simulated in them. */
        /// @{
        double measureSeconds = 0;        //!< wall clock in measure
        std::uint64_t simulatedCycles = 0; //!< measured-window cycles
        std::uint64_t committedInsts = 0;  //!< insts committed in them

        /** Event-driven cycle skipping across the measured windows
         *  (all zero with skipping disabled). */
        std::uint64_t cyclesSkipped = 0;   //!< fast-forwarded cycles
        std::uint64_t sleepEvents = 0;     //!< quiescent spans jumped
        std::uint64_t maxSkipSpan = 0;     //!< longest single jump
        /// @}
    };

    /**
     * Run a grid with optional warmup sharing; fills `timing` (when
     * non-null) with the measured wall-clock accounting.
     */
    std::vector<ExperimentResult>
    runAll(const std::vector<GridPoint> &points,
           const WarmupReuse &reuse,
           SweepTiming *timing = nullptr) const;

    /**
     * Render a figure: one row per (workload, policy) group, one
     * column per engine, values IPFC or IPC.
     */
    static void printFigure(std::ostream &os, const std::string &title,
                            const std::vector<ExperimentResult> &results,
                            bool fetch_throughput);

    /**
     * Write a machine-readable record for a bench run: one JSON
     * document with bench metadata, every grid point's metrics and
     * full stats, and optional ad-hoc named metrics (the BENCH_*.json
     * format).
     */
    static void
    writeJson(std::ostream &os, const std::string &bench,
              const std::vector<ExperimentResult> &results,
              const std::vector<std::pair<std::string, double>>
                  &metrics = {},
              const SweepTiming *timing = nullptr);

    Cycle warmupCycles() const { return warmup; }
    Cycle measureCycles() const { return measure; }
    bool cycleSkipEnabled() const { return cycleSkip; }

  private:
    /** run(point), additionally reporting the measure-phase wall
     *  seconds when `measure_seconds` is non-null. */
    ExperimentResult runTimed(const GridPoint &point,
                              double *measure_seconds) const;

    Cycle warmup;
    Cycle measure;
    std::uint64_t seed;
    bool cycleSkip;
};

/** All three engines in paper order. */
const std::vector<EngineKind> &allEngines();

} // namespace smt

#endif // SMTFETCH_SIM_EXPERIMENT_HH
