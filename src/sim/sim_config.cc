#include "sim/sim_config.hh"

#include "bpred/engine_registry.hh"
#include "util/logging.hh"

namespace smt
{

std::string
SimConfig::describe() const
{
    return csprintf("%s | %s | %s", workload.name.c_str(),
                    engineName(core.engine),
                    core.policyString().c_str());
}

SimConfig
table3Config(const WorkloadSpec &workload, EngineKind engine,
             unsigned fetch_threads, unsigned fetch_width,
             PolicyKind policy)
{
    SimConfig cfg;
    cfg.workload = workload;
    cfg.core.numThreads =
        static_cast<unsigned>(workload.benchmarks.size());
    cfg.core.engine = engine;
    // Apply the registry preset here (not only in makeEngine) so the
    // oracle/adaptive flags are visible to the front end and the
    // warmup configuration key.
    applyEnginePreset(engine, cfg.core.engineParams);
    cfg.core.policy = policy;
    cfg.core.fetchThreads = fetch_threads;
    cfg.core.fetchWidth = fetch_width;
    return cfg;
}

SimConfig
table3Config(const std::string &workload_name, EngineKind engine,
             unsigned fetch_threads, unsigned fetch_width,
             PolicyKind policy)
{
    // Accept a Table 2 workload name, a "trace:<path>[,...]" replay
    // workload, or a bare benchmark name.
    for (const auto &w : table2Workloads()) {
        if (w.name == workload_name)
            return table3Config(w, engine, fetch_threads, fetch_width,
                                policy);
    }
    if (isTraceWorkloadName(workload_name))
        return table3Config(traceWorkload(workload_name), engine,
                            fetch_threads, fetch_width, policy);
    WorkloadSpec single{workload_name, {workload_name}};
    return table3Config(single, engine, fetch_threads, fetch_width,
                        policy);
}

std::string
describeTable3(const CoreParams &p)
{
    std::string s;
    s += csprintf("Fetch: %s, width %u, %u thread(s)/cycle, FTQ %u\n",
                  p.policyString().c_str(), p.fetchWidth,
                  p.fetchThreads, p.ftqEntries);
    s += csprintf("Engine: %s\n", engineName(p.engine));
    s += csprintf("Decode/Commit: %u/%u  FetchBuffer: %u  ROB: %u\n",
                  p.decodeWidth, p.commitWidth, p.fetchBufferSize,
                  p.robEntries);
    s += csprintf("IQ: %u int / %u ld-st / %u fp  FUs: %u/%u/%u\n",
                  p.intIqEntries, p.ldstIqEntries, p.fpIqEntries,
                  p.intFUs, p.ldstFUs, p.fpFUs);
    s += csprintf("Regs: %u int + %u fp\n", p.physIntRegs,
                  p.physFpRegs);
    s += csprintf(
        "L1I/L1D 32KB 2-way 8-bank, L2 1MB 2-way 10cyc, mem %llu cyc\n",
        (unsigned long long)p.memory.memoryLatency);
    return s;
}

namespace
{

void
appendCacheKey(std::string &key, const CacheParams &c)
{
    key += csprintf("{%u,%u,%u,%u,%llu,%u}", c.sizeBytes, c.ways,
                    c.lineBytes, c.banks,
                    (unsigned long long)c.hitLatency, c.mshrs);
}

/**
 * Length-prefixed string append: user-controlled strings (benchmark
 * names, trace paths) must compose injectively — plain separator
 * joining would let "a,b" as one path collide with "a" and "b" as
 * two.
 */
void
appendStringKey(std::string &key, const std::string &s)
{
    key += csprintf("%zu:", s.size()) + s;
}

} // namespace

std::string
warmupConfigKey(const SimConfig &config)
{
    const CoreParams &c = config.core;
    const EngineParams &e = c.engineParams;
    const MemoryParams &m = c.memory;

    std::string key = "smtfetch-warmup-v2";
    key += csprintf("|seed=%llu|warmup=%llu",
                    (unsigned long long)config.seed,
                    (unsigned long long)config.warmupCycles);

    key += "|workload=";
    appendStringKey(key, config.workload.name);
    key += csprintf("|benchmarks=%zu:",
                    config.workload.benchmarks.size());
    for (const auto &b : config.workload.benchmarks)
        appendStringKey(key, b);
    key += csprintf("|traces=%zu:", config.workload.traces.size());
    for (const auto &t : config.workload.traces)
        appendStringKey(key, t);

    key += csprintf("|core=%u,%u,%u,%u,%u", c.numThreads,
                    static_cast<unsigned>(c.policy), c.fetchThreads,
                    c.fetchWidth, static_cast<unsigned>(c.engine));
    key += csprintf("|front=%u,%u,%u,%u", c.ftqEntries,
                    c.fetchBufferSize, c.decodeWidth, c.commitWidth);
    key += csprintf("|back=%u,%u,%u,%u,%u,%u,%u,%u,%u",
                    c.intIqEntries, c.ldstIqEntries, c.fpIqEntries,
                    c.robEntries, c.physIntRegs, c.physFpRegs,
                    c.intFUs, c.ldstFUs, c.fpFUs);
    key += csprintf("|lat=%llu,%llu,%llu,%llu",
                    (unsigned long long)c.intAluLatency,
                    (unsigned long long)c.intMultLatency,
                    (unsigned long long)c.fpLatency,
                    (unsigned long long)c.agenLatency);
    key += csprintf("|llp=%u,%llu",
                    static_cast<unsigned>(c.longLoadPolicy),
                    (unsigned long long)c.longLoadThreshold);
    // c.cycleSkip is deliberately excluded: skipping is bit-identical
    // to ticking, so both modes may share a warmup snapshot.

    key += csprintf("|engine=%u,%u,%u,%u,%u,%u,%u,%u,%u,%u,%u,%u,%u,"
                    "%u,%u,%u,%u,%u,%u",
                    e.gshareEntries, e.gshareHistoryBits,
                    e.gskewEntriesPerBank, e.gskewHistoryBits,
                    e.btbEntries, e.btbWays, e.ftbEntries, e.ftbWays,
                    e.ftbMaxBlock, e.streamL1Entries, e.streamL1Ways,
                    e.streamL2Entries, e.streamL2Ways,
                    e.streamMaxLength, e.dolcDepth, e.dolcOlderBits,
                    e.dolcLastBits, e.dolcCurrentBits, e.rasEntries);
    key += csprintf("|miss=%u,%u", e.missBlockInsts, e.btbScanCap);
    key += csprintf("|tage=%u,%u,%u,%u,%u,%u,%u,%u",
                    e.tageBimodalEntries, e.tageTables,
                    e.tageEntriesPerTable, e.tageTagBits,
                    e.tageCounterBits, e.tageMinHistory,
                    e.tageMaxHistory, e.tageUsefulResetPeriod);
    key += csprintf("|oracle=%u,%u,%u,%u",
                    e.perfectBp ? 1u : 0u, e.perfectIcache ? 1u : 0u,
                    e.adaptiveFetch ? 1u : 0u, e.adaptiveLowWidth);

    key += "|mem=";
    appendCacheKey(key, m.l1i);
    appendCacheKey(key, m.l1d);
    appendCacheKey(key, m.l2);
    key += csprintf(",%llu,%u,%u,%u,%llu,%llu",
                    (unsigned long long)m.memoryLatency,
                    m.itlbEntries, m.dtlbEntries, m.pageBytes,
                    (unsigned long long)m.tlbMissPenalty,
                    (unsigned long long)m.l1dLoadToUse);
    return key;
}

} // namespace smt
