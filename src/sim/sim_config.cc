#include "sim/sim_config.hh"

#include "util/logging.hh"

namespace smt
{

std::string
SimConfig::describe() const
{
    return csprintf("%s | %s | %s", workload.name.c_str(),
                    engineName(core.engine),
                    core.policyString().c_str());
}

SimConfig
table3Config(const WorkloadSpec &workload, EngineKind engine,
             unsigned fetch_threads, unsigned fetch_width,
             PolicyKind policy)
{
    SimConfig cfg;
    cfg.workload = workload;
    cfg.core.numThreads =
        static_cast<unsigned>(workload.benchmarks.size());
    cfg.core.engine = engine;
    cfg.core.policy = policy;
    cfg.core.fetchThreads = fetch_threads;
    cfg.core.fetchWidth = fetch_width;
    return cfg;
}

SimConfig
table3Config(const std::string &workload_name, EngineKind engine,
             unsigned fetch_threads, unsigned fetch_width,
             PolicyKind policy)
{
    // Accept a Table 2 workload name, a "trace:<path>[,...]" replay
    // workload, or a bare benchmark name.
    for (const auto &w : table2Workloads()) {
        if (w.name == workload_name)
            return table3Config(w, engine, fetch_threads, fetch_width,
                                policy);
    }
    if (isTraceWorkloadName(workload_name))
        return table3Config(traceWorkload(workload_name), engine,
                            fetch_threads, fetch_width, policy);
    WorkloadSpec single{workload_name, {workload_name}};
    return table3Config(single, engine, fetch_threads, fetch_width,
                        policy);
}

std::string
describeTable3(const CoreParams &p)
{
    std::string s;
    s += csprintf("Fetch: %s, width %u, %u thread(s)/cycle, FTQ %u\n",
                  p.policyString().c_str(), p.fetchWidth,
                  p.fetchThreads, p.ftqEntries);
    s += csprintf("Engine: %s\n", engineName(p.engine));
    s += csprintf("Decode/Commit: %u/%u  FetchBuffer: %u  ROB: %u\n",
                  p.decodeWidth, p.commitWidth, p.fetchBufferSize,
                  p.robEntries);
    s += csprintf("IQ: %u int / %u ld-st / %u fp  FUs: %u/%u/%u\n",
                  p.intIqEntries, p.ldstIqEntries, p.fpIqEntries,
                  p.intFUs, p.ldstFUs, p.fpFUs);
    s += csprintf("Regs: %u int + %u fp\n", p.physIntRegs,
                  p.physFpRegs);
    s += csprintf(
        "L1I/L1D 32KB 2-way 8-bank, L2 1MB 2-way 10cyc, mem %llu cyc\n",
        (unsigned long long)p.memory.memoryLatency);
    return s;
}

} // namespace smt
