/**
 * @file
 * Versioned binary checkpoint format: full simulator state serialized
 * as a sequence of named component sections, mirroring the `.trc`
 * trace-file discipline (little-endian, fixed magic, explicit version,
 * every malformed input an actionable error).
 *
 * Layout:
 *
 *   magic     "SMTCKPT\0"                       (8 bytes)
 *   version   u16                               (checkpointFormatVersion)
 *   reserved  u16                               (0)
 *   count     u32  component sections that follow (backpatched)
 *   configKey string (u32 length + bytes): the warmup-relevant
 *             configuration the state was captured under; restore
 *             refuses a mismatching target configuration.
 *   sections  count x { name string, u64 payloadBytes, payload }
 *   trailer   "SMTCKEND"                        (8 bytes)
 *
 * Components serialize themselves through save(CheckpointWriter&) /
 * restore(CheckpointReader&) hooks; the writer/reader own all byte
 * encoding, bounds checking and error reporting, so component code is
 * a flat list of typed puts/gets.
 */

#ifndef SMTFETCH_SIM_CHECKPOINT_HH
#define SMTFETCH_SIM_CHECKPOINT_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <stdexcept>
#include <string>

#include "isa/opcode.hh"
#include "util/types.hh"

namespace smt
{

/**
 * User-facing error in a checkpoint file: I/O failure, corruption, or
 * a configuration mismatch. The message names the file and what to do
 * about it.
 */
class CheckpointError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * The checkpoint format revision this build reads and writes.
 * History: v2 added the explicit overflow count to the Histogram
 * payload; v3 appended the cycle-skip counters to the SimStats
 * payload; v4 added the low-confidence bit to serialized fetch
 * blocks, the trace-source oracle lookahead, and per-engine
 * checkpoint section tags ("engine.gshare", ...) from the engine
 * registry (older checkpoints fail restore with a re-save-it error);
 * v5 appended the per-thread access/miss attribution arrays to every
 * cache payload.
 */
constexpr std::uint16_t checkpointFormatVersion = 5;

/** Binary file magic ("SMTCKPT" + NUL). */
constexpr char checkpointMagic[8] = {'S', 'M', 'T', 'C',
                                     'K', 'P', 'T', '\0'};

/** End-of-file trailer guarding against truncation. */
constexpr char checkpointTrailer[8] = {'S', 'M', 'T', 'C',
                                       'K', 'E', 'N', 'D'};

/**
 * Streaming checkpoint serializer over any seekable binary ostream
 * (file or string buffer). Sections must be strictly sequential:
 * begin(name), typed puts, end(); finish() backpatches the component
 * count and writes the trailer. Any I/O failure is a CheckpointError
 * naming the destination.
 */
class CheckpointWriter
{
  public:
    /**
     * @param os Seekable binary output stream (must outlive the
     *        writer until finish()).
     * @param context Destination name for error messages (file path).
     * @param config_key Warmup-relevant configuration descriptor the
     *        reader will verify against its own configuration.
     */
    CheckpointWriter(std::ostream &os, std::string context,
                     const std::string &config_key);

    /** Open the next component section. */
    void begin(const std::string &component);

    /** Close the current section (backpatches its payload size). */
    void end();

    /** @name Typed puts (little-endian). */
    /// @{
    void u8(std::uint8_t v);
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i16(std::int16_t v) { u16(static_cast<std::uint16_t>(v)); }
    void b(bool v) { u8(v ? 1 : 0); }
    void f64(double v);
    void str(const std::string &s);
    /// @}

    /** Write the trailer and backpatch the component count. */
    void finish();

    std::uint32_t componentsWritten() const { return components; }

    [[noreturn]] void fail(const std::string &what) const;

  private:
    void raw(const void *data, std::size_t n);

    std::ostream &os;
    std::string context;
    std::uint32_t components = 0;
    std::streampos countPos;
    std::streampos sectionSizePos = -1;
    std::string sectionName;
    bool inSection = false;
    bool finished = false;
};

/**
 * Streaming checkpoint decoder. The constructor validates magic,
 * version and the header; sections are consumed strictly in the order
 * they were written, and end() verifies the section was consumed
 * exactly. Every corruption is a CheckpointError, never UB.
 */
class CheckpointReader
{
  public:
    /**
     * @param is Binary input stream positioned at the start.
     * @param context Source name for error messages (file path).
     */
    CheckpointReader(std::istream &is, std::string context);

    /** The configuration descriptor the checkpoint was saved under. */
    const std::string &configKey() const { return key; }

    /** Declared number of component sections. */
    std::uint32_t componentCount() const { return declaredCount; }

    /**
     * Open the next section, which must be named `component`
     * (mismatch means the file disagrees with this build's component
     * layout).
     */
    void begin(const std::string &component);

    /** Close the current section; error unless fully consumed. */
    void end();

    /** @name Typed gets (bounds-checked against the section). */
    /// @{
    std::uint8_t u8();
    std::uint16_t u16();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int16_t i16() { return static_cast<std::int16_t>(u16()); }
    bool b();
    double f64();
    std::string str();
    /// @}

    /**
     * Bounds-check an element count against the bytes left in the
     * current section (corrupt counts must not drive allocations).
     * @return n, for inline use.
     */
    std::uint64_t checkCount(std::uint64_t n, std::size_t elem_bytes,
                             const char *what);

    /** Verify all sections were consumed and the trailer is intact. */
    void finish();

    [[noreturn]] void fail(const std::string &what) const;

  private:
    void raw(void *data, std::size_t n);

    std::istream &is;
    std::string context;
    std::string key;
    std::uint64_t streamBytes = 0;
    std::uint32_t declaredCount = 0;
    std::uint32_t consumedCount = 0;
    std::uint64_t sectionRemaining = 0;
    bool inSection = false;
    std::string sectionName;
};

/** Decode a serialized OpClass byte, failing on out-of-range values. */
OpClass checkpointReadOpClass(CheckpointReader &r);

/**
 * Convenience file-backed reader: opens the path and keeps the stream
 * alive for the lifetime of the object. CheckpointError when the file
 * cannot be opened.
 */
class CheckpointFileReader
{
  public:
    explicit CheckpointFileReader(const std::string &path);
    ~CheckpointFileReader();

    CheckpointFileReader(const CheckpointFileReader &) = delete;
    CheckpointFileReader &operator=(const CheckpointFileReader &) =
        delete;

    CheckpointReader &reader() { return *r; }

  private:
    /** Holds the ifstream (kept out of this header via iosfwd). */
    struct Impl;
    std::unique_ptr<Impl> impl;
    std::unique_ptr<CheckpointReader> r;
};

} // namespace smt

#endif // SMTFETCH_SIM_CHECKPOINT_HH
