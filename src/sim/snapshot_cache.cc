#include "sim/snapshot_cache.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "util/logging.hh"
#include "util/random.hh"

namespace smt
{

namespace
{

/** Read a disk-tier snapshot; empty optional-style "" on failure is
 *  not distinguishable from an empty file, so failures return false. */
bool
readFileBytes(const std::string &path, std::string &out)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    out.assign((std::istreambuf_iterator<char>(is)),
               std::istreambuf_iterator<char>());
    return is.good() || is.eof();
}

} // namespace

WarmupSnapshotCache::WarmupSnapshotCache(std::size_t max_bytes)
    : maxBytes(max_bytes)
{
    counters.maxBytes = max_bytes;
}

std::string
WarmupSnapshotCache::diskPathFor(const std::string &disk_dir,
                                 const std::string &key)
{
    return disk_dir + "/" +
           csprintf("smtckpt_%016llx.ckpt",
                    (unsigned long long)Rng::hashString(key));
}

WarmupSnapshotCache::Acquired
WarmupSnapshotCache::acquire(const std::string &key,
                             const std::string &disk_dir)
{
    std::unique_lock<std::mutex> lock(m);
    for (;;) {
        auto it = entries.find(key);
        if (it != entries.end()) {
            lru.splice(lru.begin(), lru, it->second.lruPos);
            ++counters.hits;
            return Acquired{it->second.snapshot, false, false};
        }
        auto inf = inflight.find(key);
        if (inf != inflight.end()) {
            // Another thread is warming this key; wait for its
            // verdict rather than duplicating the warmup.
            std::shared_ptr<Inflight> state = inf->second;
            cv.wait(lock, [&] { return state->done; });
            if (state->snapshot) {
                ++counters.hits;
                return Acquired{state->snapshot, false, false};
            }
            continue; // leader abandoned; retry (maybe lead)
        }

        // Miss: this caller leads. Register the lease before any
        // disk I/O so concurrent callers wait instead of racing the
        // file read.
        inflight.emplace(key, std::make_shared<Inflight>());
        lock.unlock();

        if (!disk_dir.empty()) {
            std::string bytes;
            if (readFileBytes(diskPathFor(disk_dir, key), bytes)) {
                auto snapshot = std::make_shared<const std::string>(
                    std::move(bytes));
                lock.lock();
                ++counters.diskHits;
                insertLocked(key, snapshot);
                auto state = inflight.at(key);
                state->snapshot = snapshot;
                state->done = true;
                inflight.erase(key);
                cv.notify_all();
                return Acquired{snapshot, true, false};
            }
        }

        lock.lock();
        ++counters.misses;
        return Acquired{nullptr, false, true};
    }
}

void
WarmupSnapshotCache::fulfil(const std::string &key,
                            std::string snapshot,
                            const std::string &disk_dir)
{
    auto shared =
        std::make_shared<const std::string>(std::move(snapshot));
    bool persistFailed = false;

    if (!disk_dir.empty()) {
        // Write-then-rename keeps concurrent sweeps sharing the
        // directory from observing a half-written snapshot; failures
        // only cost persistence, never the sweep.
        std::string path = diskPathFor(disk_dir, key);
        unsigned long long pid =
#ifdef _WIN32
            0;
#else
            static_cast<unsigned long long>(::getpid());
#endif
        std::string tmp =
            path + csprintf(".tmp%llx.%llx", pid,
                            (unsigned long long)
                                reinterpret_cast<std::uintptr_t>(
                                    shared.get()));
        std::ofstream os(tmp, std::ios::binary);
        if (os && os.write(shared->data(),
                           static_cast<std::streamsize>(
                               shared->size()))) {
            os.close();
            if (std::rename(tmp.c_str(), path.c_str()) != 0) {
                // rename(2) fails across filesystems (EXDEV), on
                // full disks, on permission changes — name the
                // reason, the temp file AND the counter, so a disk
                // tier that silently persists nothing is visible in
                // /v1/status instead of just slow.
                int err = errno;
                std::remove(tmp.c_str());
                warn("cannot move warmup checkpoint into place: "
                     "%s: %s",
                     path.c_str(), std::strerror(err));
                persistFailed = true;
            }
        } else {
            int err = errno;
            os.close();
            std::remove(tmp.c_str());
            warn("cannot persist warmup checkpoint: %s: %s",
                 path.c_str(), std::strerror(err));
            persistFailed = true;
        }
    }

    std::lock_guard<std::mutex> lock(m);
    if (persistFailed)
        ++counters.persistFailures;
    insertLocked(key, shared);
    auto inf = inflight.find(key);
    if (inf != inflight.end()) {
        inf->second->snapshot = std::move(shared);
        inf->second->done = true;
        inflight.erase(inf);
    }
    cv.notify_all();
}

void
WarmupSnapshotCache::abandon(const std::string &key)
{
    std::lock_guard<std::mutex> lock(m);
    auto inf = inflight.find(key);
    if (inf != inflight.end()) {
        inf->second->done = true; // snapshot stays null
        inflight.erase(inf);
    }
    cv.notify_all();
}

void
WarmupSnapshotCache::insertLocked(const std::string &key,
                                  SnapshotPtr snapshot)
{
    if (entries.find(key) != entries.end())
        return; // a concurrent fulfil won; keep the resident copy
    if (snapshot->size() > maxBytes)
        return; // would evict everything and still not fit
    lru.push_front(key);
    entries.emplace(key, Entry{std::move(snapshot), lru.begin()});
    counters.bytes += entries.at(key).snapshot->size();
    counters.entries = entries.size();
    ++counters.insertions;
    evictToBudgetLocked();
}

void
WarmupSnapshotCache::evictToBudgetLocked()
{
    while (counters.bytes > maxBytes && !lru.empty()) {
        const std::string &victim = lru.back();
        auto it = entries.find(victim);
        counters.bytes -= it->second.snapshot->size();
        entries.erase(it);
        lru.pop_back();
        ++counters.evictions;
    }
    counters.entries = entries.size();
}

WarmupSnapshotCache::Stats
WarmupSnapshotCache::stats() const
{
    std::lock_guard<std::mutex> lock(m);
    return counters;
}

void
WarmupSnapshotCache::setMaxBytes(std::size_t max_bytes)
{
    std::lock_guard<std::mutex> lock(m);
    maxBytes = max_bytes;
    counters.maxBytes = max_bytes;
    evictToBudgetLocked();
}

} // namespace smt
