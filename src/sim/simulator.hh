/**
 * @file
 * Simulator: owns the workload images, per-thread trace streams and
 * the core; runs warmup + measurement.
 */

#ifndef SMTFETCH_SIM_SIMULATOR_HH
#define SMTFETCH_SIM_SIMULATOR_HH

#include <memory>
#include <vector>

#include "core/smt_core.hh"
#include "sim/sim_config.hh"
#include "workload/trace.hh"
#include "workload/workloads.hh"

namespace smt
{

/** One self-contained simulation instance. */
class Simulator
{
  public:
    explicit Simulator(const SimConfig &config);

    /** Warmup (stats cleared afterwards) then measurement. */
    void run();

    /** Run additional cycles beyond what run() executed. */
    void runExtra(Cycle cycles);

    const SimStats &stats() const { return core_->stats(); }

    /** Unified named-statistics registry of the underlying core. */
    const StatsRegistry &registry() const { return core_->registry(); }

    SmtCore &core() { return *core_; }
    const SimConfig &config() const { return cfg; }
    const WorkloadImages &workload() const { return images; }
    TraceStream &trace(ThreadID tid) { return *traces[tid]; }

  private:
    SimConfig cfg;
    WorkloadImages images;
    std::vector<std::unique_ptr<TraceStream>> traces;
    std::unique_ptr<SmtCore> core_;
};

} // namespace smt

#endif // SMTFETCH_SIM_SIMULATOR_HH
