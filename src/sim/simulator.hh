/**
 * @file
 * Simulator: owns the workload images, per-thread trace streams and
 * the core; runs warmup + measurement.
 */

#ifndef SMTFETCH_SIM_SIMULATOR_HH
#define SMTFETCH_SIM_SIMULATOR_HH

#include <iosfwd>
#include <memory>
#include <vector>

#include "core/smt_core.hh"
#include "sim/sim_config.hh"
#include "workload/trace.hh"
#include "workload/trace_file.hh"
#include "workload/workloads.hh"

namespace smt
{

class CheckpointReader;

/** One self-contained simulation instance. */
class Simulator
{
  public:
    explicit Simulator(const SimConfig &config);

    /** Warmup (stats cleared afterwards) then measurement. */
    void run();

    /**
     * @name Split run phases. runWarmup simulates the warmup window
     * and clears statistics; runMeasure simulates the measurement
     * window. run() is exactly runWarmup() followed by runMeasure(),
     * and a checkpoint taken between the two captures the state an
     * uninterrupted run has at that boundary.
     */
    /// @{
    void runWarmup();
    void runMeasure();
    /// @}

    /**
     * @name Checkpoint save/restore. A checkpoint holds the complete
     * simulator state (core, predictors, caches, trace positions)
     * plus the warmup configuration key; restore verifies the key,
     * requires a freshly-constructed simulator, and refuses recording
     * runs (the trace file would silently miss its prefix). All
     * failures are CheckpointErrors naming the file and the fix.
     */
    /// @{
    void saveCheckpoint(const std::string &path) const;
    void restoreCheckpoint(const std::string &path);

    /** In-memory variants (warmup sharing within one process). */
    std::string saveCheckpointToString() const;
    void restoreCheckpointFromString(const std::string &data);
    /// @}

    /** Run additional cycles beyond what run() executed. */
    void runExtra(Cycle cycles);

    const SimStats &stats() const { return core_->stats(); }

    /** Unified named-statistics registry of the underlying core. */
    const StatsRegistry &registry() const { return core_->registry(); }

    SmtCore &core() { return *core_; }
    const SimConfig &config() const { return cfg; }
    const WorkloadImages &workload() const { return images; }
    TraceSource &trace(ThreadID tid) { return *traces[tid]; }

    /**
     * Capture path for a given thread when the config records the
     * run: the configured path itself for single-thread workloads,
     * else with a ".t<tid>" inserted before the extension.
     */
    static std::string recordPathFor(const std::string &base,
                                     ThreadID tid,
                                     unsigned num_threads);

    /**
     * The stats-registry JSON dump as of the end of measurement.
     * Identical to registry().jsonString() except on recording runs
     * with a pad, where the live registry keeps counting engine and
     * memory activity during the pad window; consumers wanting the
     * measured run (ExperimentRunner) must use this snapshot.
     */
    const std::string &measuredStatsJson() const
    {
        return measuredJson;
    }

  private:
    /** Shared body of the save/restore entry points. */
    void saveTo(std::ostream &os, const std::string &context) const;
    void restoreFrom(CheckpointReader &r);

    SimConfig cfg;
    std::string measuredJson;
    WorkloadImages images;
    std::vector<std::unique_ptr<TraceWriter>> recorders;
    std::vector<std::unique_ptr<TraceSource>> traces;
    std::unique_ptr<SmtCore> core_;
};

} // namespace smt

#endif // SMTFETCH_SIM_SIMULATOR_HH
