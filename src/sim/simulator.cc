#include "sim/simulator.hh"

#include "util/logging.hh"

namespace smt
{

Simulator::Simulator(const SimConfig &config)
    : cfg(config), images(buildWorkload(config.workload, config.seed))
{
    if (cfg.core.numThreads != images.numThreads())
        fatal("config numThreads %u != workload threads %u",
              cfg.core.numThreads, images.numThreads());

    core_ = std::make_unique<SmtCore>(cfg.core);
    const auto &thread_traces = cfg.workload.traces;
    for (unsigned t = 0; t < images.numThreads(); ++t) {
        const BenchmarkImage &img = *images.images[t];
        // The seed this thread's image was actually built with: a
        // replayed thread's image comes from its source trace's
        // header, not from cfg.seed (re-recording a replay must not
        // stamp a header that names the wrong image).
        std::uint64_t image_seed = cfg.seed;
        if (t < thread_traces.size() && !thread_traces[t].empty()) {
            auto replay = std::make_unique<FileTraceStream>(
                img, thread_traces[t]);
            image_seed = replay->header().seed;
            traces.push_back(std::move(replay));
        } else {
            traces.push_back(
                std::make_unique<SyntheticTraceStream>(img));
        }

        if (!cfg.recordPath.empty()) {
            TraceFileHeader hdr;
            hdr.benchmark = img.profile.name;
            hdr.seed = image_seed;
            hdr.codeBase = img.program.base();
            hdr.dataBase = img.dataBase;
            recorders.push_back(std::make_unique<TraceWriter>(
                recordPathFor(cfg.recordPath,
                              static_cast<ThreadID>(t),
                              images.numThreads()),
                hdr));
            traces.back()->setRecorder(recorders.back().get());
        }

        core_->setThread(static_cast<ThreadID>(t), traces.back().get(),
                         images.images[t].get());
    }
}

std::string
Simulator::recordPathFor(const std::string &base, ThreadID tid,
                         unsigned num_threads)
{
    if (num_threads <= 1)
        return base;
    std::string suffix = csprintf(".t%d", (int)tid);
    std::size_t slash = base.find_last_of('/');
    std::size_t dot = base.find_last_of('.');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash))
        return base + suffix;
    return base.substr(0, dot) + suffix + base.substr(dot);
}

void
Simulator::run()
{
    core_->run(cfg.warmupCycles);
    core_->resetStats();
    core_->run(cfg.measureCycles);
    measuredJson = core_->registry().jsonString();

    // Capture margin: extra records beyond what this run consumed, so
    // a replay under a slightly different configuration (or a longer
    // window) does not exhaust the file. Runs after measurement with
    // the measured counters snapshotted (SimStats restored, registry
    // JSON frozen above), so the recorded run reports the same stats
    // as an unpadded run.
    if (!cfg.recordPath.empty() && cfg.recordPadCycles > 0) {
        SimStats measured = core_->stats();
        core_->run(cfg.recordPadCycles);
        core_->stats() = measured;
    }
}

void
Simulator::runExtra(Cycle cycles)
{
    core_->run(cycles);
}

} // namespace smt
