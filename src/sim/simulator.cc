#include "sim/simulator.hh"

#include "util/logging.hh"

namespace smt
{

Simulator::Simulator(const SimConfig &config)
    : cfg(config), images(buildWorkload(config.workload, config.seed))
{
    if (cfg.core.numThreads != images.numThreads())
        fatal("config numThreads %u != workload threads %u",
              cfg.core.numThreads, images.numThreads());

    core_ = std::make_unique<SmtCore>(cfg.core);
    for (unsigned t = 0; t < images.numThreads(); ++t) {
        traces.push_back(
            std::make_unique<TraceStream>(*images.images[t]));
        core_->setThread(static_cast<ThreadID>(t), traces.back().get(),
                         images.images[t].get());
    }
}

void
Simulator::run()
{
    core_->run(cfg.warmupCycles);
    core_->resetStats();
    core_->run(cfg.measureCycles);
}

void
Simulator::runExtra(Cycle cycles)
{
    core_->run(cycles);
}

} // namespace smt
