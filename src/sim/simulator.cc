#include "sim/simulator.hh"

#include <fstream>
#include <sstream>

#include "sim/checkpoint.hh"
#include "util/logging.hh"

namespace smt
{

Simulator::Simulator(const SimConfig &config)
    : cfg(config), images(buildWorkload(config.workload, config.seed))
{
    if (cfg.core.numThreads != images.numThreads())
        fatal("config numThreads %u != workload threads %u",
              cfg.core.numThreads, images.numThreads());

    core_ = std::make_unique<SmtCore>(cfg.core);
    const auto &thread_traces = cfg.workload.traces;
    for (unsigned t = 0; t < images.numThreads(); ++t) {
        const BenchmarkImage &img = *images.images[t];
        // The seed this thread's image was actually built with: a
        // replayed thread's image comes from its source trace's
        // header, not from cfg.seed (re-recording a replay must not
        // stamp a header that names the wrong image).
        std::uint64_t image_seed = cfg.seed;
        if (t < thread_traces.size() && !thread_traces[t].empty()) {
            auto replay = std::make_unique<FileTraceStream>(
                img, thread_traces[t]);
            image_seed = replay->header().seed;
            traces.push_back(std::move(replay));
        } else {
            traces.push_back(
                std::make_unique<SyntheticTraceStream>(img));
        }

        if (!cfg.recordPath.empty()) {
            TraceFileHeader hdr;
            hdr.benchmark = img.profile.name;
            hdr.seed = image_seed;
            hdr.codeBase = img.program.base();
            hdr.dataBase = img.dataBase;
            recorders.push_back(std::make_unique<TraceWriter>(
                recordPathFor(cfg.recordPath,
                              static_cast<ThreadID>(t),
                              images.numThreads()),
                hdr));
            traces.back()->setRecorder(recorders.back().get());
        }

        core_->setThread(static_cast<ThreadID>(t), traces.back().get(),
                         images.images[t].get());
    }
}

std::string
Simulator::recordPathFor(const std::string &base, ThreadID tid,
                         unsigned num_threads)
{
    if (num_threads <= 1)
        return base;
    std::string suffix = csprintf(".t%d", (int)tid);
    std::size_t slash = base.find_last_of('/');
    std::size_t dot = base.find_last_of('.');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash))
        return base + suffix;
    return base.substr(0, dot) + suffix + base.substr(dot);
}

void
Simulator::run()
{
    runWarmup();
    runMeasure();
}

void
Simulator::runWarmup()
{
    core_->run(cfg.warmupCycles);
    core_->resetStats();
}

void
Simulator::runMeasure()
{
    core_->run(cfg.measureCycles);
    measuredJson = core_->registry().jsonString();

    // Capture margin: extra records beyond what this run consumed, so
    // a replay under a slightly different configuration (or a longer
    // window) does not exhaust the file. Runs after measurement with
    // the measured counters snapshotted (SimStats restored, registry
    // JSON frozen above), so the recorded run reports the same stats
    // as an unpadded run.
    if (!cfg.recordPath.empty() && cfg.recordPadCycles > 0) {
        SimStats measured = core_->stats();
        core_->run(cfg.recordPadCycles);
        core_->stats() = measured;
    }
}

void
Simulator::saveTo(std::ostream &os, const std::string &context) const
{
    CheckpointWriter w(os, context, warmupConfigKey(cfg));
    core_->saveState(w);
    for (unsigned t = 0; t < images.numThreads(); ++t) {
        w.begin(csprintf("trace.t%u", t));
        traces[t]->save(w);
        w.end();
    }
    w.finish();
}

void
Simulator::restoreFrom(CheckpointReader &r)
{
    if (!cfg.recordPath.empty())
        throw CheckpointError(
            "refusing to restore a checkpoint into a recording run: "
            "the captured trace would silently miss every record "
            "consumed before the snapshot — record with a full "
            "(non-restored) run instead");
    if (core_->now() != 0)
        throw CheckpointError(
            "checkpoint restore requires a freshly-constructed "
            "simulator (this one has already run)");
    std::string expected = warmupConfigKey(cfg);
    if (r.configKey() != expected)
        r.fail(csprintf(
            "was saved under a different configuration.\n  saved:  "
            "%s\n  target: %s\nRe-run the warmup for this "
            "configuration (or point --restore-checkpoint at the "
            "matching checkpoint)",
            r.configKey().c_str(), expected.c_str()));
    core_->restoreState(r);
    for (unsigned t = 0; t < images.numThreads(); ++t) {
        r.begin(csprintf("trace.t%u", t));
        traces[t]->restore(r);
        r.end();
    }
    r.finish();
}

void
Simulator::saveCheckpoint(const std::string &path) const
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        throw CheckpointError(csprintf(
            "%s: cannot create checkpoint file (missing directory "
            "or no write permission?)",
            path.c_str()));
    saveTo(os, path);
}

void
Simulator::restoreCheckpoint(const std::string &path)
{
    CheckpointFileReader file(path);
    restoreFrom(file.reader());
}

std::string
Simulator::saveCheckpointToString() const
{
    std::ostringstream os(std::ios::binary);
    saveTo(os, "<memory>");
    return std::move(os).str();
}

void
Simulator::restoreCheckpointFromString(const std::string &data)
{
    std::istringstream is(data, std::ios::binary);
    CheckpointReader r(is, "<memory>");
    restoreFrom(r);
}

void
Simulator::runExtra(Cycle cycles)
{
    core_->run(cycles);
}

} // namespace smt
