/**
 * @file
 * JSON codec for grid points and per-point results: the wire format
 * of the distributed-sweep worker protocol (serve/worker.hh) and the
 * on-disk format of the completed-point journal (sim/journal.hh).
 * Round trips are lossless — `statsJson` travels as an escaped JSON
 * string member, and ipfc/ipc render through the same "%.17g" path as
 * the BENCH records, so a result that went through the codec still
 * produces byte-identical BENCH_*.json output.
 */

#ifndef SMTFETCH_SIM_RESULT_CODEC_HH
#define SMTFETCH_SIM_RESULT_CODEC_HH

#include <string>

#include "sim/executor.hh"
#include "sim/experiment.hh"

namespace smt
{

class JsonValue;
class JsonWriter;

/** Malformed codec input (bad journal line, bad worker payload). */
class CodecError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Emit one result as a BENCH-record `results[]` element. This is THE
 * rendering ExperimentRunner::writeJson uses, factored out so the
 * distributed merge paths (in-daemon and tools/merge_bench.py) stay
 * byte-compatible with the single-process runner by construction.
 */
void writeResultJson(JsonWriter &jw, const ExperimentResult &r);

/** @name Wire codec (compact single-line JSON documents). */
/// @{
std::string resultToWireJson(const ExperimentResult &r);
ExperimentResult resultFromWireJson(const JsonValue &doc);

std::string pointToWireJson(const GridPoint &point);
GridPoint pointFromWireJson(const JsonValue &doc);

/** The outcome codec carries the result plus the served-by sideband
 *  (warmup/restored/direct, timings) the sweep accounting needs. */
std::string outcomeToWireJson(const PointOutcome &outcome);
PointOutcome outcomeFromWireJson(const JsonValue &doc);

void writeExecutorParamsJson(JsonWriter &jw, const ExecutorParams &p);
ExecutorParams executorParamsFromWireJson(const JsonValue &doc);
/// @}

/**
 * Identity hash of a whole request — windows, seed, cycle-skip and
 * every expanded grid point in order. A resumable journal records it
 * so a resume against a different spec fails fast instead of merging
 * unrelated results.
 */
std::string sweepRequestKey(const SweepRequest &request);

} // namespace smt

#endif // SMTFETCH_SIM_RESULT_CODEC_HH
