#include "sim/experiment.hh"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <fstream>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "sim/checkpoint.hh"
#include "sim/simulator.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/table.hh"

namespace smt
{

namespace
{

using SteadyClock = std::chrono::steady_clock;

double
secondsSince(SteadyClock::time_point start)
{
    return std::chrono::duration<double>(SteadyClock::now() - start)
        .count();
}

/**
 * Fail fast when two grid points would capture to the same trace
 * file: the second run would silently overwrite the first recording.
 */
void
checkRecordPathsUnique(
    const std::vector<ExperimentRunner::GridPoint> &points)
{
    std::unordered_map<std::string, std::size_t> seen;
    for (std::size_t i = 0; i < points.size(); ++i) {
        const std::string &path = points[i].recordPath;
        if (path.empty())
            continue;
        auto [it, inserted] = seen.emplace(path, i);
        if (!inserted)
            throw std::invalid_argument(csprintf(
                "grid points %zu and %zu both record to \"%s\" — "
                "the second run would silently overwrite the first "
                "capture; record each point to a distinct file",
                it->second, i, path.c_str()));
    }
}

/** Run fn(0..n-1) across host threads, propagating one failure. */
template <typename Fn>
void
parallelFor(std::size_t n, Fn &&fn)
{
    unsigned hw = std::thread::hardware_concurrency();
    unsigned workers =
        std::min<unsigned>(hw == 0 ? 4 : hw, static_cast<unsigned>(n));
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::vector<std::thread> pool;
    std::atomic<std::size_t> next{0};
    // First failure wins; a throw escaping a pool thread would
    // std::terminate with no message (trace replays and checkpoint
    // restores can fail with actionable errors).
    std::exception_ptr error;
    std::mutex error_mutex;
    for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back([&]() {
            while (true) {
                std::size_t i = next.fetch_add(1);
                if (i >= n)
                    return;
                try {
                    fn(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(error_mutex);
                    if (!error)
                        error = std::current_exception();
                    return;
                }
            }
        });
    }
    for (auto &t : pool)
        t.join();
    if (error)
        std::rethrow_exception(error);
}

} // namespace

std::string
ExperimentResult::policyDotString() const
{
    return csprintf("%u.%u", fetchThreads, fetchWidth);
}

bool
RunOverrides::any() const
{
    return ftqEntries || fetchBufferSize || robEntries ||
           longLoadPolicy || longLoadThreshold || predictorShift > 0;
}

void
RunOverrides::apply(CoreParams &core) const
{
    if (ftqEntries)
        core.ftqEntries = *ftqEntries;
    if (fetchBufferSize)
        core.fetchBufferSize = *fetchBufferSize;
    if (robEntries)
        core.robEntries = *robEntries;
    if (longLoadPolicy)
        core.longLoadPolicy = *longLoadPolicy;
    if (longLoadThreshold)
        core.longLoadThreshold = *longLoadThreshold;
    if (predictorShift > 0) {
        auto &ep = core.engineParams;
        ep.gshareEntries >>= predictorShift;
        ep.gskewEntriesPerBank >>= predictorShift;
        ep.btbEntries >>= predictorShift;
        ep.ftbEntries >>= predictorShift;
        ep.streamL1Entries >>= predictorShift;
        ep.streamL2Entries >>= predictorShift;
    }
}

std::string
RunOverrides::describe() const
{
    std::string s;
    auto add = [&s](const std::string &part) {
        s += (s.empty() ? "" : " ") + part;
    };
    if (ftqEntries)
        add(csprintf("ftq=%u", *ftqEntries));
    if (fetchBufferSize)
        add(csprintf("fbuf=%u", *fetchBufferSize));
    if (robEntries)
        add(csprintf("rob=%u", *robEntries));
    if (longLoadPolicy)
        add(csprintf("llp=%s", longLoadPolicyName(*longLoadPolicy)));
    if (longLoadThreshold)
        add(csprintf("llthresh=%llu",
                     (unsigned long long)*longLoadThreshold));
    if (predictorShift > 0)
        add(csprintf("predshift=%u", predictorShift));
    return s;
}

void
RunOverrides::writeJson(JsonWriter &jw) const
{
    if (ftqEntries)
        jw.field("ftqEntries", *ftqEntries);
    if (fetchBufferSize)
        jw.field("fetchBufferSize", *fetchBufferSize);
    if (robEntries)
        jw.field("robEntries", *robEntries);
    if (longLoadPolicy)
        jw.field("longLoadPolicy",
                 longLoadPolicyName(*longLoadPolicy));
    if (longLoadThreshold)
        jw.field("longLoadThreshold", *longLoadThreshold);
    if (predictorShift > 0)
        jw.field("predictorShift", predictorShift);
}

ExperimentRunner::ExperimentRunner(Cycle warmup, Cycle measure,
                                   std::uint64_t seed, bool cycle_skip)
    : warmup(warmup), measure(measure), seed(seed),
      cycleSkip(cycle_skip)
{
}

ExperimentResult
ExperimentRunner::run(const std::string &workload_name,
                      EngineKind engine, unsigned fetch_threads,
                      unsigned fetch_width, PolicyKind policy) const
{
    return run(GridPoint{workload_name, engine, fetch_threads,
                         fetch_width, policy});
}

namespace
{

SimConfig
configForPoint(const ExperimentRunner::GridPoint &point, Cycle warmup,
               Cycle measure, std::uint64_t seed, bool cycle_skip)
{
    SimConfig cfg =
        table3Config(point.workload, point.engine, point.fetchThreads,
                     point.fetchWidth, point.policy);
    point.overrides.apply(cfg.core);
    cfg.core.cycleSkip = cycle_skip;
    cfg.warmupCycles = warmup;
    cfg.measureCycles = measure;
    cfg.seed = seed;
    cfg.recordPath = point.recordPath;
    cfg.recordPadCycles = point.recordPadCycles;
    return cfg;
}

ExperimentResult
resultFrom(const ExperimentRunner::GridPoint &point, Cycle warmup,
           Cycle measure, const Simulator &sim)
{
    ExperimentResult r;
    r.workload = point.workload;
    r.engine = point.engine;
    r.policy = point.policy;
    r.fetchThreads = point.fetchThreads;
    r.fetchWidth = point.fetchWidth;
    r.overrides = point.overrides;
    r.warmupCycles = warmup;
    r.measureCycles = measure;
    r.stats = sim.stats();
    r.ipfc = r.stats.ipfc();
    r.ipc = r.stats.ipc();
    // The end-of-measurement snapshot, not the live registry: on
    // padded recording runs the live counters include pad activity.
    r.statsJson = sim.measuredStatsJson();
    return r;
}

/** Snapshot-cache file name: hash of the warmup configuration key. */
std::string
checkpointCacheName(const std::string &key)
{
    return csprintf("smtckpt_%016llx.ckpt",
                    (unsigned long long)Rng::hashString(key));
}

bool
fileExists(const std::string &path)
{
    return std::ifstream(path, std::ios::binary).good();
}

} // namespace

ExperimentResult
ExperimentRunner::run(const GridPoint &point) const
{
    return runTimed(point, nullptr);
}

ExperimentResult
ExperimentRunner::runTimed(const GridPoint &point,
                           double *measure_seconds) const
{
    SimConfig cfg =
        configForPoint(point, warmup, measure, seed, cycleSkip);
    Simulator sim(cfg);
    if (!point.restoreCheckpointPath.empty()) {
        sim.restoreCheckpoint(point.restoreCheckpointPath);
    } else {
        sim.runWarmup();
        if (!point.saveCheckpointPath.empty())
            sim.saveCheckpoint(point.saveCheckpointPath);
    }
    auto measure_start = SteadyClock::now();
    sim.runMeasure();
    if (measure_seconds != nullptr)
        *measure_seconds = secondsSince(measure_start);
    return resultFrom(point, warmup, measure, sim);
}

std::vector<ExperimentResult>
ExperimentRunner::runAll(const std::vector<GridPoint> &points) const
{
    return runAll(points, WarmupReuse{});
}

std::vector<ExperimentResult>
ExperimentRunner::runAll(const std::vector<GridPoint> &points,
                         const WarmupReuse &reuse,
                         SweepTiming *timing) const
{
    checkRecordPathsUnique(points);
    auto sweep_start = SteadyClock::now();

    SweepTiming local;
    local.gridPoints = points.size();
    local.reuseEnabled = reuse.enabled;
    std::vector<ExperimentResult> results(points.size());

    // Simulation-throughput accounting, shared by both paths: the
    // cycle/instruction totals come from the (deterministic) results,
    // the wall clock is accumulated around each measure phase.
    std::mutex measure_mutex;
    auto addMeasureSeconds = [&](double s) {
        std::lock_guard<std::mutex> lock(measure_mutex);
        local.measureSeconds += s;
    };
    auto finalize = [&]() {
        for (const auto &r : results) {
            local.simulatedCycles += r.measureCycles;
            local.committedInsts += r.stats.instsCommitted;
            local.cyclesSkipped += r.stats.cyclesSkipped;
            local.sleepEvents += r.stats.sleepEvents;
            if (r.stats.maxSkipSpan > local.maxSkipSpan)
                local.maxSkipSpan = r.stats.maxSkipSpan;
        }
        local.sweepSeconds = secondsSince(sweep_start);
        if (timing != nullptr)
            *timing = local;
    };

    if (!reuse.enabled) {
        local.directRuns = points.size();
        parallelFor(points.size(), [&](std::size_t i) {
            double measure_sec = 0;
            results[i] = runTimed(points[i], &measure_sec);
            addMeasureSeconds(measure_sec);
        });
        finalize();
        return results;
    }

    // Group grid points whose warmup execution is provably identical
    // (equal warmup configuration keys). Points with record/checkpoint
    // side effects keep the one-simulator-per-point path: a restored
    // recording run would capture a truncated trace.
    struct Group
    {
        std::string key;
        std::vector<std::size_t> indices;
    };
    std::vector<Group> groups;
    std::unordered_map<std::string, std::size_t> keyToGroup;
    std::vector<std::size_t> direct;
    for (std::size_t i = 0; i < points.size(); ++i) {
        const GridPoint &p = points[i];
        if (!p.recordPath.empty() || !p.saveCheckpointPath.empty() ||
            !p.restoreCheckpointPath.empty()) {
            direct.push_back(i);
            continue;
        }
        std::string key =
            warmupConfigKey(
                configForPoint(p, warmup, measure, seed, cycleSkip));
        auto [it, inserted] =
            keyToGroup.emplace(key, groups.size());
        if (inserted)
            groups.push_back(Group{std::move(key), {}});
        groups[it->second].indices.push_back(i);
    }
    local.warmupGroups = groups.size();
    local.directRuns = direct.size();

    std::mutex timing_mutex;
    auto account = [&](std::size_t warmups, std::size_t restores,
                       double warmup_sec) {
        std::lock_guard<std::mutex> lock(timing_mutex);
        local.warmupRuns += warmups;
        local.restoredRuns += restores;
        local.warmupSeconds += warmup_sec;
    };

    // One work unit per group plus one per direct point; units run
    // across host threads, points inside a group run sequentially
    // (they share the group's snapshot).
    std::size_t units = groups.size() + direct.size();
    parallelFor(units, [&](std::size_t u) {
        if (u >= groups.size()) {
            std::size_t i = direct[u - groups.size()];
            double measure_sec = 0;
            results[i] = runTimed(points[i], &measure_sec);
            addMeasureSeconds(measure_sec);
            return;
        }
        const Group &group = groups[u];

        // Returns the measure-phase wall seconds; the caller decides
        // when to commit them to the sweep accounting (the cache
        // fast path below may abandon a half-measured group and
        // re-measure it, which must not double-count).
        auto measurePoint = [&](std::size_t i, Simulator &sim) {
            auto measure_start = SteadyClock::now();
            sim.runMeasure();
            double sec = secondsSince(measure_start);
            results[i] = resultFrom(points[i], warmup, measure, sim);
            return sec;
        };

        std::string cache_file;
        if (!reuse.checkpointDir.empty())
            cache_file = reuse.checkpointDir + "/" +
                         checkpointCacheName(group.key);

        // Cross-sweep fast path: a persisted snapshot with the same
        // configuration hash serves every point without any warmup.
        if (!cache_file.empty() && fileExists(cache_file)) {
            try {
                std::size_t restored = 0;
                double group_measure_sec = 0;
                for (std::size_t i : group.indices) {
                    Simulator sim(configForPoint(points[i], warmup,
                                                 measure, seed,
                                                 cycleSkip));
                    sim.restoreCheckpoint(cache_file);
                    group_measure_sec += measurePoint(i, sim);
                    ++restored;
                }
                addMeasureSeconds(group_measure_sec);
                account(0, restored, 0.0);
                return;
            } catch (const CheckpointError &e) {
                // Stale or corrupt cache entry (e.g. a config-hash
                // collision): warn and rebuild it below.
                warn("ignoring unusable warmup checkpoint: %s",
                     e.what());
            }
        }

        // Run the warmup once; the first point continues on the warm
        // simulator (it literally is the uninterrupted run), the rest
        // restore the snapshot.
        std::size_t first = group.indices.front();
        Simulator sim(
            configForPoint(points[first], warmup, measure, seed,
                           cycleSkip));
        auto warmup_start = SteadyClock::now();
        sim.runWarmup();
        double warmup_sec = secondsSince(warmup_start);

        std::string snapshot;
        bool cache_written = false;
        if (!cache_file.empty()) {
            // Write-then-rename so a concurrent sweep sharing the
            // cache directory never observes a half-written
            // snapshot (rename is atomic on POSIX filesystems). The
            // pid disambiguates concurrent processes, the simulator
            // address concurrent workers within one.
            unsigned long long pid =
#ifdef _WIN32
                0;
#else
                static_cast<unsigned long long>(::getpid());
#endif
            std::string tmp = cache_file +
                              csprintf(".tmp%llx.%llx", pid,
                                       (unsigned long long)
                                           reinterpret_cast<
                                               std::uintptr_t>(&sim));
            try {
                sim.saveCheckpoint(tmp);
                if (std::rename(tmp.c_str(),
                                cache_file.c_str()) == 0) {
                    cache_written = true;
                } else {
                    std::remove(tmp.c_str());
                    warn("cannot move warmup checkpoint into "
                         "place: %s",
                         cache_file.c_str());
                }
            } catch (const CheckpointError &e) {
                std::remove(tmp.c_str());
                warn("cannot persist warmup checkpoint: %s",
                     e.what());
            }
        }
        // An unusable cache must not abort the sweep: the warm
        // simulator is in hand, so fall back to the in-memory
        // snapshot for this group's remaining points.
        if (!cache_written && group.indices.size() > 1)
            snapshot = sim.saveCheckpointToString();

        addMeasureSeconds(measurePoint(first, sim));

        std::size_t restored = 0;
        for (std::size_t k = 1; k < group.indices.size(); ++k) {
            std::size_t i = group.indices[k];
            Simulator rest(
                configForPoint(points[i], warmup, measure, seed,
                               cycleSkip));
            if (cache_written)
                rest.restoreCheckpoint(cache_file);
            else
                rest.restoreCheckpointFromString(snapshot);
            addMeasureSeconds(measurePoint(i, rest));
            ++restored;
        }
        account(1, restored, warmup_sec);
    });

    finalize();
    return results;
}

void
ExperimentRunner::printFigure(std::ostream &os, const std::string &title,
                              const std::vector<ExperimentResult> &results,
                              bool fetch_throughput)
{
    // Group rows by (workload, policy string), columns by engine.
    struct Key
    {
        std::string workload;
        std::string policy;
        bool
        operator<(const Key &o) const
        {
            if (workload != o.workload)
                return workload < o.workload;
            return policy < o.policy;
        }
    };
    std::map<Key, std::map<EngineKind, double>> cells;
    std::vector<Key> row_order;
    for (const auto &r : results) {
        // Non-default selection policies are spelled out so a grid
        // mixing ICOUNT and RR keeps distinct rows (ICOUNT stays
        // bare for the paper figures).
        std::string policy = r.policyDotString();
        if (r.policy != PolicyKind::ICount)
            policy = std::string(policyName(r.policy)) + "." + policy;
        std::string variant = r.overrides.describe();
        if (!variant.empty())
            policy += " " + variant;
        Key k{r.workload, policy};
        if (cells.find(k) == cells.end())
            row_order.push_back(k);
        cells[k][r.engine] =
            fetch_throughput ? r.ipfc : r.ipc;
    }

    TextTable table({"workload", "policy", "gshare+BTB", "gskew+FTB",
                     "stream"});
    for (const auto &k : row_order) {
        auto &row = cells[k];
        auto cell = [&row](EngineKind e) {
            auto it = row.find(e);
            return it == row.end() ? std::string("-")
                                   : TextTable::num(it->second);
        };
        table.addRow({k.workload, k.policy,
                      cell(EngineKind::GshareBtb),
                      cell(EngineKind::GskewFtb),
                      cell(EngineKind::Stream)});
    }
    table.print(os, title);
}

void
ExperimentRunner::writeJson(
    std::ostream &os, const std::string &bench,
    const std::vector<ExperimentResult> &results,
    const std::vector<std::pair<std::string, double>> &metrics,
    const SweepTiming *timing)
{
    JsonWriter jw(os, /*indent_step=*/2);
    jw.beginObject();
    jw.field("schema", "smtfetch-bench-v1");
    jw.field("bench", bench);
    if (timing != nullptr) {
        // Measured simulation throughput of this sweep (wall clock is
        // host-dependent by design; tools/check_bench.py validates
        // shape and finiteness, tools/compare_throughput.py reports
        // run-over-run deltas).
        double mcycles =
            static_cast<double>(timing->simulatedCycles) / 1e6;
        double minsts =
            static_cast<double>(timing->committedInsts) / 1e6;
        jw.key("throughput");
        jw.beginObject();
        jw.field("wallSeconds", timing->sweepSeconds);
        jw.field("measureSeconds", timing->measureSeconds);
        jw.field("simulatedCycles", timing->simulatedCycles);
        jw.field("committedInsts", timing->committedInsts);
        jw.field("mcyclesPerSecond",
                 timing->measureSeconds > 0.0
                     ? mcycles / timing->measureSeconds
                     : 0.0);
        jw.field("mips", timing->measureSeconds > 0.0
                             ? minsts / timing->measureSeconds
                             : 0.0);
        jw.field("cyclesSkipped", timing->cyclesSkipped);
        jw.field("sleepEvents", timing->sleepEvents);
        jw.field("maxSkipSpan", timing->maxSkipSpan);
        jw.endObject();
    }
    if (timing != nullptr && timing->reuseEnabled) {
        // Measured end-to-end accounting of the warmup-sharing fast
        // path. The baseline estimate prices every restored point at
        // this sweep's mean measured warmup cost; when every warmup
        // came from a persisted cache the estimate is conservative
        // (no warmup was measured, so the speedup reports 1).
        double avg_warmup =
            timing->warmupRuns > 0
                ? timing->warmupSeconds /
                      static_cast<double>(timing->warmupRuns)
                : 0.0;
        double baseline =
            timing->sweepSeconds +
            avg_warmup * static_cast<double>(timing->restoredRuns);
        jw.key("warmupReuse");
        jw.beginObject();
        jw.field("gridPoints",
                 static_cast<std::uint64_t>(timing->gridPoints));
        jw.field("warmupGroups",
                 static_cast<std::uint64_t>(timing->warmupGroups));
        jw.field("warmupRuns",
                 static_cast<std::uint64_t>(timing->warmupRuns));
        jw.field("restoredRuns",
                 static_cast<std::uint64_t>(timing->restoredRuns));
        jw.field("directRuns",
                 static_cast<std::uint64_t>(timing->directRuns));
        jw.field("warmupSeconds", timing->warmupSeconds);
        jw.field("sweepSeconds", timing->sweepSeconds);
        jw.field("estimatedBaselineSeconds", baseline);
        jw.field("estimatedSpeedup",
                 timing->sweepSeconds > 0.0
                     ? baseline / timing->sweepSeconds
                     : 1.0);
        jw.endObject();
    }
    if (!metrics.empty()) {
        jw.key("metrics");
        jw.beginObject();
        for (const auto &[name, v] : metrics)
            jw.field(name, v);
        jw.endObject();
    }
    jw.key("results");
    jw.beginArray();
    for (const auto &r : results) {
        jw.beginObject();
        jw.field("workload", r.workload);
        jw.field("engine", engineName(r.engine));
        jw.field("policy", policyName(r.policy));
        jw.field("fetchThreads", r.fetchThreads);
        jw.field("fetchWidth", r.fetchWidth);
        jw.field("policyString",
                 std::string(policyName(r.policy)) + "." +
                     r.policyDotString());
        if (r.overrides.any()) {
            jw.field("variant", r.overrides.describe());
            jw.key("overrides");
            jw.beginObject();
            r.overrides.writeJson(jw);
            jw.endObject();
        }
        jw.field("warmupCycles", r.warmupCycles);
        jw.field("measureCycles", r.measureCycles);
        jw.field("ipfc", r.ipfc);
        jw.field("ipc", r.ipc);
        jw.key("stats");
        if (r.statsJson.empty())
            jw.raw("{}");
        else
            jw.raw(r.statsJson);
        jw.endObject();
    }
    jw.endArray();
    jw.endObject();
    os << '\n';
}

const std::vector<EngineKind> &
allEngines()
{
    static const std::vector<EngineKind> engines = {
        EngineKind::GshareBtb, EngineKind::GskewFtb, EngineKind::Stream};
    return engines;
}

} // namespace smt
