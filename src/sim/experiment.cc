#include "sim/experiment.hh"

#include <atomic>
#include <exception>
#include <map>
#include <mutex>
#include <thread>

#include "sim/simulator.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace smt
{

std::string
ExperimentResult::policyDotString() const
{
    return csprintf("%u.%u", fetchThreads, fetchWidth);
}

bool
RunOverrides::any() const
{
    return ftqEntries || fetchBufferSize || robEntries ||
           longLoadPolicy || longLoadThreshold || predictorShift > 0;
}

void
RunOverrides::apply(CoreParams &core) const
{
    if (ftqEntries)
        core.ftqEntries = *ftqEntries;
    if (fetchBufferSize)
        core.fetchBufferSize = *fetchBufferSize;
    if (robEntries)
        core.robEntries = *robEntries;
    if (longLoadPolicy)
        core.longLoadPolicy = *longLoadPolicy;
    if (longLoadThreshold)
        core.longLoadThreshold = *longLoadThreshold;
    if (predictorShift > 0) {
        auto &ep = core.engineParams;
        ep.gshareEntries >>= predictorShift;
        ep.gskewEntriesPerBank >>= predictorShift;
        ep.btbEntries >>= predictorShift;
        ep.ftbEntries >>= predictorShift;
        ep.streamL1Entries >>= predictorShift;
        ep.streamL2Entries >>= predictorShift;
    }
}

std::string
RunOverrides::describe() const
{
    std::string s;
    auto add = [&s](const std::string &part) {
        s += (s.empty() ? "" : " ") + part;
    };
    if (ftqEntries)
        add(csprintf("ftq=%u", *ftqEntries));
    if (fetchBufferSize)
        add(csprintf("fbuf=%u", *fetchBufferSize));
    if (robEntries)
        add(csprintf("rob=%u", *robEntries));
    if (longLoadPolicy)
        add(csprintf("llp=%s", longLoadPolicyName(*longLoadPolicy)));
    if (longLoadThreshold)
        add(csprintf("llthresh=%llu",
                     (unsigned long long)*longLoadThreshold));
    if (predictorShift > 0)
        add(csprintf("predshift=%u", predictorShift));
    return s;
}

void
RunOverrides::writeJson(JsonWriter &jw) const
{
    if (ftqEntries)
        jw.field("ftqEntries", *ftqEntries);
    if (fetchBufferSize)
        jw.field("fetchBufferSize", *fetchBufferSize);
    if (robEntries)
        jw.field("robEntries", *robEntries);
    if (longLoadPolicy)
        jw.field("longLoadPolicy",
                 longLoadPolicyName(*longLoadPolicy));
    if (longLoadThreshold)
        jw.field("longLoadThreshold", *longLoadThreshold);
    if (predictorShift > 0)
        jw.field("predictorShift", predictorShift);
}

ExperimentRunner::ExperimentRunner(Cycle warmup, Cycle measure,
                                   std::uint64_t seed)
    : warmup(warmup), measure(measure), seed(seed)
{
}

ExperimentResult
ExperimentRunner::run(const std::string &workload_name,
                      EngineKind engine, unsigned fetch_threads,
                      unsigned fetch_width, PolicyKind policy) const
{
    return run(GridPoint{workload_name, engine, fetch_threads,
                         fetch_width, policy});
}

ExperimentResult
ExperimentRunner::run(const GridPoint &point) const
{
    SimConfig cfg =
        table3Config(point.workload, point.engine, point.fetchThreads,
                     point.fetchWidth, point.policy);
    point.overrides.apply(cfg.core);
    cfg.warmupCycles = warmup;
    cfg.measureCycles = measure;
    cfg.seed = seed;
    cfg.recordPath = point.recordPath;
    cfg.recordPadCycles = point.recordPadCycles;

    Simulator sim(cfg);
    sim.run();

    ExperimentResult r;
    r.workload = point.workload;
    r.engine = point.engine;
    r.policy = point.policy;
    r.fetchThreads = point.fetchThreads;
    r.fetchWidth = point.fetchWidth;
    r.overrides = point.overrides;
    r.warmupCycles = warmup;
    r.measureCycles = measure;
    r.stats = sim.stats();
    r.ipfc = r.stats.ipfc();
    r.ipc = r.stats.ipc();
    // The end-of-measurement snapshot, not the live registry: on
    // padded recording runs the live counters include pad activity.
    r.statsJson = sim.measuredStatsJson();
    return r;
}

std::vector<ExperimentResult>
ExperimentRunner::runAll(const std::vector<GridPoint> &points) const
{
    std::vector<ExperimentResult> results(points.size());

    unsigned hw = std::thread::hardware_concurrency();
    unsigned workers = std::min<unsigned>(
        hw == 0 ? 4 : hw, static_cast<unsigned>(points.size()));
    if (workers <= 1) {
        for (std::size_t i = 0; i < points.size(); ++i)
            results[i] = run(points[i]);
        return results;
    }

    std::vector<std::thread> pool;
    std::atomic<std::size_t> next{0};
    // First failure wins; a throw escaping a pool thread would
    // std::terminate with no message (trace replays can fail with
    // actionable TraceFileErrors).
    std::exception_ptr error;
    std::mutex error_mutex;
    for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back([&]() {
            while (true) {
                std::size_t i = next.fetch_add(1);
                if (i >= points.size())
                    return;
                try {
                    results[i] = run(points[i]);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(error_mutex);
                    if (!error)
                        error = std::current_exception();
                    return;
                }
            }
        });
    }
    for (auto &t : pool)
        t.join();
    if (error)
        std::rethrow_exception(error);
    return results;
}

void
ExperimentRunner::printFigure(std::ostream &os, const std::string &title,
                              const std::vector<ExperimentResult> &results,
                              bool fetch_throughput)
{
    // Group rows by (workload, policy string), columns by engine.
    struct Key
    {
        std::string workload;
        std::string policy;
        bool
        operator<(const Key &o) const
        {
            if (workload != o.workload)
                return workload < o.workload;
            return policy < o.policy;
        }
    };
    std::map<Key, std::map<EngineKind, double>> cells;
    std::vector<Key> row_order;
    for (const auto &r : results) {
        // Non-default selection policies are spelled out so a grid
        // mixing ICOUNT and RR keeps distinct rows (ICOUNT stays
        // bare for the paper figures).
        std::string policy = r.policyDotString();
        if (r.policy != PolicyKind::ICount)
            policy = std::string(policyName(r.policy)) + "." + policy;
        std::string variant = r.overrides.describe();
        if (!variant.empty())
            policy += " " + variant;
        Key k{r.workload, policy};
        if (cells.find(k) == cells.end())
            row_order.push_back(k);
        cells[k][r.engine] =
            fetch_throughput ? r.ipfc : r.ipc;
    }

    TextTable table({"workload", "policy", "gshare+BTB", "gskew+FTB",
                     "stream"});
    for (const auto &k : row_order) {
        auto &row = cells[k];
        auto cell = [&row](EngineKind e) {
            auto it = row.find(e);
            return it == row.end() ? std::string("-")
                                   : TextTable::num(it->second);
        };
        table.addRow({k.workload, k.policy,
                      cell(EngineKind::GshareBtb),
                      cell(EngineKind::GskewFtb),
                      cell(EngineKind::Stream)});
    }
    table.print(os, title);
}

void
ExperimentRunner::writeJson(
    std::ostream &os, const std::string &bench,
    const std::vector<ExperimentResult> &results,
    const std::vector<std::pair<std::string, double>> &metrics)
{
    JsonWriter jw(os, /*indent_step=*/2);
    jw.beginObject();
    jw.field("schema", "smtfetch-bench-v1");
    jw.field("bench", bench);
    if (!metrics.empty()) {
        jw.key("metrics");
        jw.beginObject();
        for (const auto &[name, v] : metrics)
            jw.field(name, v);
        jw.endObject();
    }
    jw.key("results");
    jw.beginArray();
    for (const auto &r : results) {
        jw.beginObject();
        jw.field("workload", r.workload);
        jw.field("engine", engineName(r.engine));
        jw.field("policy", policyName(r.policy));
        jw.field("fetchThreads", r.fetchThreads);
        jw.field("fetchWidth", r.fetchWidth);
        jw.field("policyString",
                 std::string(policyName(r.policy)) + "." +
                     r.policyDotString());
        if (r.overrides.any()) {
            jw.field("variant", r.overrides.describe());
            jw.key("overrides");
            jw.beginObject();
            r.overrides.writeJson(jw);
            jw.endObject();
        }
        jw.field("warmupCycles", r.warmupCycles);
        jw.field("measureCycles", r.measureCycles);
        jw.field("ipfc", r.ipfc);
        jw.field("ipc", r.ipc);
        jw.key("stats");
        if (r.statsJson.empty())
            jw.raw("{}");
        else
            jw.raw(r.statsJson);
        jw.endObject();
    }
    jw.endArray();
    jw.endObject();
    os << '\n';
}

const std::vector<EngineKind> &
allEngines()
{
    static const std::vector<EngineKind> engines = {
        EngineKind::GshareBtb, EngineKind::GskewFtb, EngineKind::Stream};
    return engines;
}

} // namespace smt
