#include "sim/experiment.hh"

#include <algorithm>
#include <map>
#include <optional>
#include <thread>

#include "bpred/engine_registry.hh"
#include "sim/result_codec.hh"
#include "sim/scheduler.hh"
#include "sim/snapshot_cache.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace smt
{

std::string
ExperimentResult::policyDotString() const
{
    return csprintf("%u.%u", fetchThreads, fetchWidth);
}

bool
RunOverrides::any() const
{
    return ftqEntries || fetchBufferSize || robEntries ||
           longLoadPolicy || longLoadThreshold || predictorShift > 0 ||
           !engineParams.empty();
}

void
RunOverrides::apply(CoreParams &core) const
{
    if (ftqEntries)
        core.ftqEntries = *ftqEntries;
    if (fetchBufferSize)
        core.fetchBufferSize = *fetchBufferSize;
    if (robEntries)
        core.robEntries = *robEntries;
    if (longLoadPolicy)
        core.longLoadPolicy = *longLoadPolicy;
    if (longLoadThreshold)
        core.longLoadThreshold = *longLoadThreshold;
    for (const auto &[key, value] : engineParams) {
        const EngineParamSpec *spec =
            EngineRegistry::instance().findParam(key);
        if (spec == nullptr)
            fatal("unknown engine parameter '%s' (the spec layer "
                  "validates these)",
                  key.c_str());
        spec->set(core.engineParams, value);
    }
    if (predictorShift > 0) {
        auto &ep = core.engineParams;
        ep.gshareEntries >>= predictorShift;
        ep.gskewEntriesPerBank >>= predictorShift;
        ep.btbEntries >>= predictorShift;
        ep.ftbEntries >>= predictorShift;
        ep.streamL1Entries >>= predictorShift;
        ep.streamL2Entries >>= predictorShift;
    }
}

std::string
RunOverrides::describe() const
{
    std::string s;
    auto add = [&s](const std::string &part) {
        s += (s.empty() ? "" : " ") + part;
    };
    if (ftqEntries)
        add(csprintf("ftq=%u", *ftqEntries));
    if (fetchBufferSize)
        add(csprintf("fbuf=%u", *fetchBufferSize));
    if (robEntries)
        add(csprintf("rob=%u", *robEntries));
    if (longLoadPolicy)
        add(csprintf("llp=%s", longLoadPolicyName(*longLoadPolicy)));
    if (longLoadThreshold)
        add(csprintf("llthresh=%llu",
                     (unsigned long long)*longLoadThreshold));
    if (predictorShift > 0)
        add(csprintf("predshift=%u", predictorShift));
    for (const auto &[key, value] : engineParams)
        add(csprintf("%s=%llu", key.c_str(),
                     (unsigned long long)value));
    return s;
}

void
RunOverrides::writeJson(JsonWriter &jw) const
{
    if (ftqEntries)
        jw.field("ftqEntries", *ftqEntries);
    if (fetchBufferSize)
        jw.field("fetchBufferSize", *fetchBufferSize);
    if (robEntries)
        jw.field("robEntries", *robEntries);
    if (longLoadPolicy)
        jw.field("longLoadPolicy",
                 longLoadPolicyName(*longLoadPolicy));
    if (longLoadThreshold)
        jw.field("longLoadThreshold", *longLoadThreshold);
    if (predictorShift > 0)
        jw.field("predictorShift", predictorShift);
    for (const auto &[key, value] : engineParams)
        jw.field(key, value);
}

SweepReport
ExperimentRunner::run(const SweepRequest &request) const
{
    // A reuse-enabled run without an installed shared cache gets a
    // private one scoped to this call — the PR 4 "once per runAll"
    // semantics; snapshots still persist across calls through
    // request.checkpointDir's disk tier.
    std::optional<WarmupSnapshotCache> local;
    WarmupSnapshotCache *cache_ptr = nullptr;
    if (request.reuseEnabled())
        cache_ptr = sharedCache ? sharedCache : &local.emplace();

    unsigned hw = std::thread::hardware_concurrency();
    unsigned workers = std::min<unsigned>(
        hw == 0 ? 4 : hw,
        (unsigned)std::max<std::size_t>(request.points.size(), 1));
    SweepScheduler scheduler(workers, cache_ptr);
    return scheduler.wait(scheduler.submit(request));
}

void
ExperimentRunner::printFigure(std::ostream &os, const std::string &title,
                              const std::vector<ExperimentResult> &results,
                              bool fetch_throughput)
{
    // Group rows by (workload, policy string), columns by engine.
    struct Key
    {
        std::string workload;
        std::string policy;
        bool
        operator<(const Key &o) const
        {
            if (workload != o.workload)
                return workload < o.workload;
            return policy < o.policy;
        }
    };
    std::map<Key, std::map<EngineKind, double>> cells;
    std::vector<Key> row_order;
    // Columns: registry order, filtered to the engines present so a
    // paper-trio figure and a full-zoo ablation both render tight.
    std::vector<EngineKind> columns;
    for (const auto &r : results) {
        if (std::find(columns.begin(), columns.end(), r.engine) ==
            columns.end())
            columns.push_back(r.engine);
    }
    std::sort(columns.begin(), columns.end(),
              [](EngineKind a, EngineKind b) {
                  return static_cast<unsigned>(a) <
                         static_cast<unsigned>(b);
              });
    for (const auto &r : results) {
        // Non-default selection policies are spelled out so a grid
        // mixing ICOUNT and RR keeps distinct rows (ICOUNT stays
        // bare for the paper figures).
        std::string policy = r.policyDotString();
        if (r.policy != PolicyKind::ICount)
            policy = std::string(policyName(r.policy)) + "." + policy;
        std::string variant = r.overrides.describe();
        if (!variant.empty())
            policy += " " + variant;
        Key k{r.workload, policy};
        if (cells.find(k) == cells.end())
            row_order.push_back(k);
        cells[k][r.engine] =
            fetch_throughput ? r.ipfc : r.ipc;
    }

    std::vector<std::string> header{"workload", "policy"};
    for (EngineKind e : columns)
        header.push_back(engineName(e));
    TextTable table(header);
    for (const auto &k : row_order) {
        auto &row = cells[k];
        std::vector<std::string> cols{k.workload, k.policy};
        for (EngineKind e : columns) {
            auto it = row.find(e);
            cols.push_back(it == row.end()
                               ? std::string("-")
                               : TextTable::num(it->second));
        }
        table.addRow(cols);
    }
    table.print(os, title);
}

void
ExperimentRunner::writeJson(
    std::ostream &os, const std::string &bench,
    const std::vector<ExperimentResult> &results,
    const std::vector<std::pair<std::string, double>> &metrics,
    const SweepTiming *timing)
{
    JsonWriter jw(os, /*indent_step=*/2);
    jw.beginObject();
    jw.field("schema", "smtfetch-bench-v1");
    jw.field("bench", bench);
    if (timing != nullptr) {
        // Measured simulation throughput of this sweep (wall clock is
        // host-dependent by design; tools/check_bench.py validates
        // shape and finiteness, tools/compare_throughput.py reports
        // run-over-run deltas).
        double mcycles =
            static_cast<double>(timing->simulatedCycles) / 1e6;
        double minsts =
            static_cast<double>(timing->committedInsts) / 1e6;
        jw.key("throughput");
        jw.beginObject();
        jw.field("wallSeconds", timing->sweepSeconds);
        jw.field("measureSeconds", timing->measureSeconds);
        jw.field("simulatedCycles", timing->simulatedCycles);
        jw.field("committedInsts", timing->committedInsts);
        jw.field("mcyclesPerSecond",
                 timing->measureSeconds > 0.0
                     ? mcycles / timing->measureSeconds
                     : 0.0);
        jw.field("mips", timing->measureSeconds > 0.0
                             ? minsts / timing->measureSeconds
                             : 0.0);
        jw.field("cyclesSkipped", timing->cyclesSkipped);
        jw.field("sleepEvents", timing->sleepEvents);
        jw.field("maxSkipSpan", timing->maxSkipSpan);
        jw.endObject();
    }
    if (timing != nullptr && timing->reuseEnabled) {
        // Measured end-to-end accounting of the warmup-sharing fast
        // path. The baseline estimate prices every restored point at
        // this sweep's mean measured warmup cost; when every warmup
        // came from a persisted cache the estimate is conservative
        // (no warmup was measured, so the speedup reports 1).
        double avg_warmup =
            timing->warmupRuns > 0
                ? timing->warmupSeconds /
                      static_cast<double>(timing->warmupRuns)
                : 0.0;
        double baseline =
            timing->sweepSeconds +
            avg_warmup * static_cast<double>(timing->restoredRuns);
        jw.key("warmupReuse");
        jw.beginObject();
        jw.field("gridPoints",
                 static_cast<std::uint64_t>(timing->gridPoints));
        jw.field("warmupGroups",
                 static_cast<std::uint64_t>(timing->warmupGroups));
        jw.field("warmupRuns",
                 static_cast<std::uint64_t>(timing->warmupRuns));
        jw.field("restoredRuns",
                 static_cast<std::uint64_t>(timing->restoredRuns));
        jw.field("directRuns",
                 static_cast<std::uint64_t>(timing->directRuns));
        // Only resumed distributed sweeps have journal-served
        // points; older records stay byte-identical.
        if (timing->journaledPoints > 0)
            jw.field("journaledPoints",
                     static_cast<std::uint64_t>(
                         timing->journaledPoints));
        jw.field("cacheHits", timing->cacheHits);
        jw.field("cacheDiskHits", timing->cacheDiskHits);
        jw.field("cacheEvictions", timing->cacheEvictions);
        jw.field("warmupSeconds", timing->warmupSeconds);
        jw.field("sweepSeconds", timing->sweepSeconds);
        jw.field("estimatedBaselineSeconds", baseline);
        jw.field("estimatedSpeedup",
                 timing->sweepSeconds > 0.0
                     ? baseline / timing->sweepSeconds
                     : 1.0);
        jw.endObject();
    }
    if (!metrics.empty()) {
        jw.key("metrics");
        jw.beginObject();
        for (const auto &[name, v] : metrics)
            jw.field(name, v);
        jw.endObject();
    }
    jw.key("results");
    jw.beginArray();
    for (const auto &r : results)
        writeResultJson(jw, r);
    jw.endArray();
    jw.endObject();
    os << '\n';
}

// allEngines()/paperEngines() are defined in bpred/engine_registry.cc
// next to the registry they enumerate.

} // namespace smt
