/**
 * @file
 * The executor half of the ExperimentRunner split: PointExecutor runs
 * exactly one grid point — building its SimConfig, warming up (or
 * restoring a shared warmup snapshot from a WarmupSnapshotCache) and
 * measuring — and reports what it did in a PointOutcome. It holds no
 * queueing or grid state; SweepScheduler (sim/scheduler.hh) owns
 * that.
 */

#ifndef SMTFETCH_SIM_EXECUTOR_HH
#define SMTFETCH_SIM_EXECUTOR_HH

#include <string>

#include "sim/experiment.hh"

namespace smt
{

class WarmupSnapshotCache;

/** The per-point execution parameters shared by a whole sweep. */
struct ExecutorParams
{
    Cycle warmupCycles = 50'000;
    Cycle measureCycles = 300'000;
    std::uint64_t seed = 0;
    bool cycleSkip = true;
};

/** What executing one point produced and how it was served. */
struct PointOutcome
{
    ExperimentResult result;

    double warmupSeconds = 0; //!< wall clock when ranWarmup
    double measureSeconds = 0;

    /** Exactly one of the three is set. */
    bool ranWarmup = false; //!< led a warmup (snapshot published)
    bool restored = false;  //!< served from a cached snapshot
    bool direct = false;    //!< outside the reuse path entirely

    /** The restore was served by the disk tier (restored only). */
    bool diskHit = false;
};

/**
 * Runs single grid points. Thread-safe: execute() holds no mutable
 * state, so one PointExecutor can serve every worker thread of a
 * scheduler.
 *
 * With a cache, reusable points go through single-flight warmup
 * leasing: the first point of a warmup-key group runs the warmup and
 * publishes the snapshot; every other point (in this sweep or any
 * concurrent one sharing the cache) restores it. Without a cache —
 * or for points with record/checkpoint side effects, where a
 * restored run would capture a truncated trace — the point runs the
 * plain warmup+measure path.
 */
class PointExecutor
{
  public:
    /**
     * @param cache null disables warmup sharing entirely.
     * @param snapshot_dir persistent disk tier for the cache
     *        (empty: memory only); ignored when cache is null.
     */
    PointExecutor(const ExecutorParams &params,
                  WarmupSnapshotCache *cache = nullptr,
                  std::string snapshot_dir = "")
        : params(params), cache(cache),
          snapshotDir(std::move(snapshot_dir))
    {
    }

    /** The full simulator configuration a point runs under. */
    SimConfig configFor(const GridPoint &point) const;

    /** The point's warmup-sharing group key (warmupConfigKey). */
    std::string warmupKey(const GridPoint &point) const;

    /** False when the point has record/checkpoint side effects. */
    static bool reusable(const GridPoint &point);

    /** Run the point to completion; throws on simulation errors
     *  (never leaves a warmup lease dangling). */
    PointOutcome execute(const GridPoint &point) const;

  private:
    PointOutcome runDirect(const GridPoint &point) const;

    ExecutorParams params;
    WarmupSnapshotCache *cache;
    std::string snapshotDir;
};

} // namespace smt

#endif // SMTFETCH_SIM_EXECUTOR_HH
