/**
 * @file
 * The completed-point journal behind resumable distributed sweeps:
 * one JSONL file per bench in the sweep's checkpointDir. Line 1 is a
 * header binding the journal to a specific request (sweepRequestKey
 * over the expanded grid); every later line records one completed
 * grid point's outcome through the result codec. A coordinator
 * killed mid-run reopens the journal, skips every journaled point
 * and re-serves the rest from the persisted warmup snapshots — zero
 * recomputed points, zero re-simulated warmups.
 */

#ifndef SMTFETCH_SIM_JOURNAL_HH
#define SMTFETCH_SIM_JOURNAL_HH

#include <cstddef>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/executor.hh"

namespace smt
{

/** User-facing journal problem: unreadable file, header mismatch. */
class JournalError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** One journaled completion: a grid index plus what the run did. */
struct JournalEntry
{
    std::size_t index = 0;
    PointOutcome outcome;
};

/**
 * Open-or-create journal for one (bench, request) pair. Loading
 * tolerates a torn final line (the coordinator was killed mid-append)
 * by truncating to the last complete entry; any other corruption or a
 * header naming a different request/grid throws JournalError with the
 * fix spelled out. append() is thread-safe and flushes per line so a
 * SIGKILL never loses more than the entry being written.
 */
class SweepJournal
{
  public:
    /**
     * @param fresh discard any existing journal instead of resuming
     *        from it (the --fresh flag).
     */
    SweepJournal(std::string path, std::string bench,
                 std::string request_key, std::size_t points,
                 std::size_t warmup_groups, bool fresh);

    /** Entries recovered from disk, one per already-done point
     *  (deduplicated, ascending index order). */
    const std::vector<JournalEntry> &completed() const
    {
        return entries;
    }

    void append(std::size_t index, const PointOutcome &outcome);

    const std::string &filePath() const { return path; }

    /** "journal_<bench>.jsonl" inside the checkpoint directory. */
    static std::string pathFor(const std::string &dir,
                               const std::string &bench);

  private:
    void load(std::size_t points, bool fresh);
    void rewrite();

    std::mutex m;
    std::string path;
    std::string bench;
    std::string requestKey;
    std::size_t points;
    std::size_t warmupGroups;
    std::vector<JournalEntry> entries;
    std::ofstream os;
};

} // namespace smt

#endif // SMTFETCH_SIM_JOURNAL_HH
