#include "sim/scheduler.hh"

#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "sim/simulator.hh"
#include "sim/snapshot_cache.hh"
#include "util/logging.hh"
#include "workload/workloads.hh"

namespace smt
{

namespace
{

using SteadyClock = std::chrono::steady_clock;

double
secondsSince(SteadyClock::time_point start)
{
    return std::chrono::duration<double>(SteadyClock::now() - start)
        .count();
}

/**
 * Fail fast when two grid points would capture to the same trace
 * file: the second run would silently overwrite the first recording.
 * Multi-thread workloads record one file per thread (the ".t<tid>"
 * derived paths), so the collision check runs over the expanded
 * per-thread file set — two points whose base paths differ can still
 * collide on a derived path.
 */
void
checkRecordPathsUnique(const std::vector<GridPoint> &points)
{
    std::unordered_map<std::string, std::size_t> seen;
    for (std::size_t i = 0; i < points.size(); ++i) {
        const std::string &path = points[i].recordPath;
        if (path.empty())
            continue;
        const unsigned threads =
            workloadThreadCount(points[i].workload);
        for (unsigned t = 0; t < threads; ++t) {
            const std::string derived =
                Simulator::recordPathFor(path, t, threads);
            auto [it, inserted] = seen.emplace(derived, i);
            if (!inserted)
                throw std::invalid_argument(csprintf(
                    "grid points %zu and %zu both record to \"%s\" "
                    "— the second run would silently overwrite the "
                    "first capture; record each point to a distinct "
                    "file",
                    it->second, i, derived.c_str()));
        }
    }
}

} // namespace

SweepScheduler::Job::Job(const SweepRequest &request, std::string name,
                         WarmupSnapshotCache *cache,
                         const std::string &default_snapshot_dir,
                         SubmitOptions options)
    : name(std::move(name)), points(request.points),
      executor(ExecutorParams{request.warmupCycles,
                              request.measureCycles, request.seed,
                              request.cycleSkip},
               request.reuseEnabled() ? cache : nullptr,
               !request.checkpointDir.empty() ? request.checkpointDir
                                              : default_snapshot_dir),
      reuseEnabled(request.reuseEnabled() &&
                   (cache != nullptr || options.runner != nullptr)),
      runner(std::move(options.runner)),
      journal(std::move(options.journal)),
      groupGate(options.groupGate && request.reuseEnabled())
{
    report.results.resize(points.size());
    auto &t = report.timing;
    t.gridPoints = points.size();
    t.reuseEnabled = reuseEnabled;
    if (reuseEnabled) {
        // Precompute the warmup grouping so the report's
        // warmupGroups is exact even when another job sharing the
        // cache leads some of this job's warmups.
        std::unordered_set<std::string> keys;
        for (const GridPoint &p : points) {
            if (PointExecutor::reusable(p))
                keys.insert(executor.warmupKey(p));
        }
        t.warmupGroups = keys.size();
    }
    if (groupGate) {
        groupKeys.reserve(points.size());
        for (const GridPoint &p : points)
            groupKeys.push_back(PointExecutor::reusable(p)
                                    ? executor.warmupKey(p)
                                    : std::string());
    }

    // Prefill journaled completions: the report carries their
    // original results and timings, they are never claimed, and
    // their warmup groups count as published (the leading run's
    // snapshot is in the checkpointDir disk tier).
    std::vector<bool> done(points.size(), false);
    for (JournalEntry &e : options.precompleted) {
        if (e.index >= points.size() || done[e.index])
            continue;
        done[e.index] = true;
        report.results[e.index] = std::move(e.outcome.result);
        ++completed;
        ++t.journaledPoints;
        t.warmupSeconds += e.outcome.warmupSeconds;
        t.measureSeconds += e.outcome.measureSeconds;
        if (groupGate && !e.outcome.direct &&
            !groupKeys[e.index].empty())
            readyGroups.insert(groupKeys[e.index]);
    }
    for (std::size_t i = 0; i < points.size(); ++i)
        if (!done[i])
            pending.push_back(i);
}

SweepScheduler::SweepScheduler(unsigned workers,
                               WarmupSnapshotCache *cache,
                               std::string default_snapshot_dir)
    : cache(cache), defaultSnapshotDir(std::move(default_snapshot_dir))
{
    if (workers == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        workers = hw == 0 ? 4 : hw;
    }
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        pool.emplace_back([this] { workerLoop(); });
}

SweepScheduler::~SweepScheduler()
{
    {
        std::lock_guard<std::mutex> lock(m);
        stopping = true;
    }
    cvWork.notify_all();
    for (auto &t : pool)
        t.join();
}

SweepScheduler::JobId
SweepScheduler::submit(const SweepRequest &request, std::string name)
{
    return submit(request, std::move(name), SubmitOptions{});
}

SweepScheduler::JobId
SweepScheduler::submit(const SweepRequest &request, std::string name,
                       SubmitOptions options)
{
    checkRecordPathsUnique(request.points);

    auto job = std::make_unique<Job>(request, std::move(name), cache,
                                     defaultSnapshotDir,
                                     std::move(options));
    job->submitTime = SteadyClock::now();
    job->evictionsAtSubmit =
        (job->reuseEnabled && cache) ? cache->stats().evictions : 0;

    std::lock_guard<std::mutex> lock(m);
    JobId id = nextId++;
    Job &ref = *job;
    jobs.emplace(id, std::move(job));
    if (ref.pending.empty()) {
        // Empty grid, or every point was already journaled by a
        // previous run: terminal immediately.
        finalizeLocked(ref, JobState::Done);
    } else {
        runQueue.push_back(id);
        ref.tokenQueued = true;
        cvWork.notify_all();
    }
    return id;
}

bool
SweepScheduler::cancel(JobId id)
{
    std::lock_guard<std::mutex> lock(m);
    auto it = jobs.find(id);
    if (it == jobs.end())
        return false;
    Job &job = *it->second;
    if (job.state != JobState::Queued &&
        job.state != JobState::Running)
        return false;
    job.cancelRequested = true;
    job.pending.clear(); // stop further claims
    if (job.inFlight == 0)
        finalizeLocked(job, JobState::Cancelled);
    return true;
}

std::optional<SweepScheduler::JobStatus>
SweepScheduler::status(JobId id) const
{
    std::lock_guard<std::mutex> lock(m);
    auto it = jobs.find(id);
    if (it == jobs.end())
        return std::nullopt;
    const Job &job = *it->second;
    JobStatus s;
    s.state = job.state;
    s.name = job.name;
    s.totalPoints = job.points.size();
    s.completedPoints = job.completed;
    if (job.state == JobState::Cancelled ||
        job.state == JobState::Failed)
        s.cancelledPoints = job.points.size() - job.completed;
    s.warmupRuns = job.report.timing.warmupRuns;
    s.restoredRuns = job.report.timing.restoredRuns;
    s.journaledPoints = job.report.timing.journaledPoints;
    s.error = job.errorText;
    s.firstDoneSeq = job.firstDoneSeq;
    s.lastDoneSeq = job.lastDoneSeq;
    return s;
}

SweepReport
SweepScheduler::wait(JobId id)
{
    std::unique_lock<std::mutex> lock(m);
    auto it = jobs.find(id);
    if (it == jobs.end())
        throw std::invalid_argument(
            csprintf("unknown sweep job id %llu",
                     (unsigned long long)id));
    Job &job = *it->second;
    cvDone.wait(lock, [&] {
        return job.state == JobState::Done ||
               job.state == JobState::Failed ||
               job.state == JobState::Cancelled;
    });
    if (job.state == JobState::Failed) {
        if (job.error)
            std::rethrow_exception(job.error);
        throw std::runtime_error("sweep failed: " + job.errorText);
    }
    if (job.state == JobState::Cancelled)
        throw std::runtime_error(
            job.name.empty()
                ? std::string("sweep cancelled")
                : "sweep cancelled: " + job.name);
    return job.report;
}

const SweepReport *
SweepScheduler::report(JobId id) const
{
    std::lock_guard<std::mutex> lock(m);
    auto it = jobs.find(id);
    if (it == jobs.end() || it->second->state != JobState::Done)
        return nullptr;
    return &it->second->report;
}

void
SweepScheduler::finalizeLocked(Job &job, JobState terminal)
{
    auto &t = job.report.timing;
    if (terminal == JobState::Done) {
        for (const auto &r : job.report.results) {
            t.simulatedCycles += r.measureCycles;
            t.committedInsts += r.stats.instsCommitted;
            t.cyclesSkipped += r.stats.cyclesSkipped;
            t.sleepEvents += r.stats.sleepEvents;
            if (r.stats.maxSkipSpan > t.maxSkipSpan)
                t.maxSkipSpan = r.stats.maxSkipSpan;
        }
    }
    if (job.reuseEnabled && cache) {
        std::uint64_t now = cache->stats().evictions;
        t.cacheEvictions = now - job.evictionsAtSubmit;
    }
    t.sweepSeconds = secondsSince(job.submitTime);
    job.state = terminal;
    // Release the remote backend deterministically: dropping the
    // last runner reference tears the job's worker-process pool
    // down now, not when the scheduler is destroyed. Safe here —
    // the job is drained, so no thread is inside the runner.
    job.runner = nullptr;
    job.journal.reset();
    cvDone.notify_all();
}

std::optional<std::size_t>
SweepScheduler::claimLocked(Job &job)
{
    for (auto it = job.pending.begin(); it != job.pending.end();
         ++it) {
        if (job.groupGate) {
            const std::string &key = job.groupKeys[*it];
            if (!key.empty() && !job.readyGroups.count(key)) {
                if (job.leadingGroups.count(key))
                    continue; // a leader is warming this group up
                job.leadingGroups.insert(key);
            }
        }
        std::size_t i = *it;
        job.pending.erase(it);
        return i;
    }
    return std::nullopt;
}

void
SweepScheduler::workerLoop()
{
    std::unique_lock<std::mutex> lock(m);
    for (;;) {
        cvWork.wait(lock,
                    [&] { return stopping || !runQueue.empty(); });
        if (stopping)
            return;

        JobId id = runQueue.front();
        runQueue.pop_front();
        auto it = jobs.find(id);
        if (it == jobs.end())
            continue;
        Job &job = *it->second;
        job.tokenQueued = false;
        if (job.pending.empty())
            continue; // tombstone token (cancelled/failed/drained)

        // Claim exactly one dispatchable point, then send the job to
        // the back of the queue: concurrent sweeps interleave
        // point-by-point instead of draining whole-sweep FIFO.
        auto claim = claimLocked(job);
        if (!claim)
            continue; // every pending point waits on a warmup
                      // leader; its completion re-queues the token
        std::size_t i = *claim;
        ++job.inFlight;
        if (!job.pending.empty()) {
            runQueue.push_back(id);
            job.tokenQueued = true;
            cvWork.notify_one();
        }

        lock.unlock();
        PointOutcome outcome;
        std::exception_ptr error;
        try {
            outcome = job.runner
                          ? job.runner(i, job.points[i])
                          : job.executor.execute(job.points[i]);
        } catch (...) {
            error = std::current_exception();
        }
        // The journal has its own lock and flushes per line; keep
        // the file write outside the scheduler lock.
        if (!error && job.journal)
            job.journal->append(i, outcome);
        lock.lock();

        --job.inFlight;
        if (error) {
            if (!job.error) {
                job.error = error;
                try {
                    std::rethrow_exception(error);
                } catch (const std::exception &e) {
                    job.errorText = e.what();
                } catch (...) {
                    job.errorText = "unknown error";
                }
            }
            job.pending.clear(); // stop further claims
        } else {
            job.report.results[i] = std::move(outcome.result);
            ++job.completed;
            std::uint64_t seq = ++doneSeq;
            if (job.firstDoneSeq == 0)
                job.firstDoneSeq = seq;
            job.lastDoneSeq = seq;
            if (job.state == JobState::Queued)
                job.state = JobState::Running;

            auto &t = job.report.timing;
            t.warmupSeconds += outcome.warmupSeconds;
            t.measureSeconds += outcome.measureSeconds;
            if (outcome.ranWarmup)
                ++t.warmupRuns;
            if (outcome.direct)
                ++t.directRuns;
            if (outcome.restored) {
                ++t.restoredRuns;
                if (outcome.diskHit)
                    ++t.cacheDiskHits;
                else
                    ++t.cacheHits;
            }
            if (job.groupGate && !job.groupKeys[i].empty()) {
                job.leadingGroups.erase(job.groupKeys[i]);
                job.readyGroups.insert(job.groupKeys[i]);
            }
        }

        // A completion can unblock gated siblings (their leader just
        // published its snapshot); make sure the job has a token.
        if (!job.tokenQueued && !job.pending.empty()) {
            runQueue.push_back(id);
            job.tokenQueued = true;
            cvWork.notify_one();
        }

        bool drained = job.inFlight == 0 && job.pending.empty();
        if (drained && job.state != JobState::Done &&
            job.state != JobState::Failed &&
            job.state != JobState::Cancelled) {
            JobState terminal = JobState::Done;
            if (job.error)
                terminal = JobState::Failed;
            else if (job.cancelRequested)
                terminal = JobState::Cancelled;
            else if (job.completed != job.points.size())
                terminal = JobState::Failed; // unreachable guard
            finalizeLocked(job, terminal);
        }
    }
}

} // namespace smt
