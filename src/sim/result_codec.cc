#include "sim/result_codec.hh"

#include <sstream>

#include "bpred/engine_registry.hh"
#include "sim/sweep_spec.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace smt
{

namespace
{

[[noreturn]] void
codecFail(const std::string &what)
{
    throw CodecError("result codec: " + what);
}

const JsonValue &
member(const JsonValue &doc, const char *key)
{
    const JsonValue *v = doc.find(key);
    if (v == nullptr)
        codecFail(csprintf("missing \"%s\" member", key));
    return *v;
}

std::uint64_t
u64Member(const JsonValue &doc, const char *key)
{
    const JsonValue &v = member(doc, key);
    if (!v.isNumber())
        codecFail(csprintf("\"%s\" must be a number, found %s", key,
                           v.kindName()));
    return v.asUInt64();
}

double
numMember(const JsonValue &doc, const char *key)
{
    const JsonValue &v = member(doc, key);
    if (!v.isNumber())
        codecFail(csprintf("\"%s\" must be a number, found %s", key,
                           v.kindName()));
    return v.asNumber();
}

std::string
strMember(const JsonValue &doc, const char *key)
{
    const JsonValue &v = member(doc, key);
    if (!v.isString())
        codecFail(csprintf("\"%s\" must be a string, found %s", key,
                           v.kindName()));
    return v.asString();
}

RunOverrides
overridesFromWire(const JsonValue &doc)
{
    if (!doc.isObject())
        codecFail(csprintf("\"overrides\" must be an object, "
                           "found %s",
                           doc.kindName()));
    RunOverrides o;
    for (const auto &[key, value] : doc.asObject()) {
        if (key == "ftqEntries") {
            o.ftqEntries = static_cast<unsigned>(value.asUInt64());
        } else if (key == "fetchBufferSize") {
            o.fetchBufferSize =
                static_cast<unsigned>(value.asUInt64());
        } else if (key == "robEntries") {
            o.robEntries = static_cast<unsigned>(value.asUInt64());
        } else if (key == "longLoadPolicy") {
            o.longLoadPolicy =
                longLoadPolicyFromString(value.asString());
        } else if (key == "longLoadThreshold") {
            o.longLoadThreshold = value.asUInt64();
        } else if (key == "predictorShift") {
            o.predictorShift =
                static_cast<unsigned>(value.asUInt64());
        } else if (const EngineParamSpec *ps =
                       EngineRegistry::instance().findParam(key);
                   ps != nullptr) {
            std::uint64_t n = value.asUInt64();
            if (!ps->inRange(n))
                codecFail(csprintf("engine parameter \"%s\" value "
                                   "%llu out of range",
                                   key.c_str(),
                                   (unsigned long long)n));
            o.engineParams.emplace_back(key, n);
        } else {
            codecFail(csprintf("unknown override \"%s\"",
                               key.c_str()));
        }
    }
    return o;
}

} // namespace

void
writeResultJson(JsonWriter &jw, const ExperimentResult &r)
{
    jw.beginObject();
    jw.field("workload", r.workload);
    jw.field("engine", engineName(r.engine));
    jw.field("policy", policyName(r.policy));
    jw.field("fetchThreads", r.fetchThreads);
    jw.field("fetchWidth", r.fetchWidth);
    jw.field("policyString",
             std::string(policyName(r.policy)) + "." +
                 r.policyDotString());
    if (r.overrides.any()) {
        jw.field("variant", r.overrides.describe());
        jw.key("overrides");
        jw.beginObject();
        r.overrides.writeJson(jw);
        jw.endObject();
    }
    jw.field("warmupCycles", r.warmupCycles);
    jw.field("measureCycles", r.measureCycles);
    jw.field("ipfc", r.ipfc);
    jw.field("ipc", r.ipc);
    jw.key("stats");
    if (r.statsJson.empty())
        jw.raw("{}");
    else
        jw.raw(r.statsJson);
    jw.endObject();
}

std::string
resultToWireJson(const ExperimentResult &r)
{
    std::ostringstream os;
    JsonWriter jw(os, 0);
    jw.beginObject();
    jw.field("workload", r.workload);
    jw.field("engine", engineName(r.engine));
    jw.field("policy", policyName(r.policy));
    jw.field("fetchThreads", r.fetchThreads);
    jw.field("fetchWidth", r.fetchWidth);
    if (r.overrides.any()) {
        jw.key("overrides");
        jw.beginObject();
        r.overrides.writeJson(jw);
        jw.endObject();
    }
    jw.field("warmupCycles", r.warmupCycles);
    jw.field("measureCycles", r.measureCycles);
    jw.field("ipfc", r.ipfc);
    jw.field("ipc", r.ipc);
    // The sweep accounting reads these back without re-parsing the
    // full stats document.
    jw.field("instsCommitted", r.stats.instsCommitted);
    jw.field("cyclesSkipped", r.stats.cyclesSkipped);
    jw.field("sleepEvents", r.stats.sleepEvents);
    jw.field("maxSkipSpan", r.stats.maxSkipSpan);
    // As an escaped STRING member, not a nested object: parsing a
    // nested object would funnel 64-bit counters through doubles and
    // corrupt values above 2^53; the string round-trips losslessly.
    jw.field("statsJson", r.statsJson);
    jw.endObject();
    return os.str();
}

ExperimentResult
resultFromWireJson(const JsonValue &doc)
{
    if (!doc.isObject())
        codecFail(csprintf("a result must be an object, found %s",
                           doc.kindName()));
    ExperimentResult r;
    r.workload = strMember(doc, "workload");
    r.engine = engineKindFromString(strMember(doc, "engine"));
    r.policy = policyKindFromString(strMember(doc, "policy"));
    r.fetchThreads =
        static_cast<unsigned>(u64Member(doc, "fetchThreads"));
    r.fetchWidth =
        static_cast<unsigned>(u64Member(doc, "fetchWidth"));
    if (const JsonValue *o = doc.find("overrides"))
        r.overrides = overridesFromWire(*o);
    r.warmupCycles = u64Member(doc, "warmupCycles");
    r.measureCycles = u64Member(doc, "measureCycles");
    r.ipfc = numMember(doc, "ipfc");
    r.ipc = numMember(doc, "ipc");
    r.stats.instsCommitted = u64Member(doc, "instsCommitted");
    r.stats.cyclesSkipped = u64Member(doc, "cyclesSkipped");
    r.stats.sleepEvents = u64Member(doc, "sleepEvents");
    r.stats.maxSkipSpan = u64Member(doc, "maxSkipSpan");
    r.statsJson = strMember(doc, "statsJson");
    return r;
}

std::string
pointToWireJson(const GridPoint &point)
{
    std::ostringstream os;
    JsonWriter jw(os, 0);
    jw.beginObject();
    jw.field("workload", point.workload);
    jw.field("engine", engineName(point.engine));
    jw.field("fetchThreads", point.fetchThreads);
    jw.field("fetchWidth", point.fetchWidth);
    jw.field("policy", policyName(point.policy));
    if (point.overrides.any()) {
        jw.key("overrides");
        jw.beginObject();
        point.overrides.writeJson(jw);
        jw.endObject();
    }
    if (!point.recordPath.empty())
        jw.field("recordPath", point.recordPath);
    if (point.recordPadCycles != 0)
        jw.field("recordPadCycles", point.recordPadCycles);
    if (!point.saveCheckpointPath.empty())
        jw.field("saveCheckpointPath", point.saveCheckpointPath);
    if (!point.restoreCheckpointPath.empty())
        jw.field("restoreCheckpointPath",
                 point.restoreCheckpointPath);
    jw.endObject();
    return os.str();
}

GridPoint
pointFromWireJson(const JsonValue &doc)
{
    if (!doc.isObject())
        codecFail(csprintf("a point must be an object, found %s",
                           doc.kindName()));
    GridPoint p;
    p.workload = strMember(doc, "workload");
    p.engine = engineKindFromString(strMember(doc, "engine"));
    p.fetchThreads =
        static_cast<unsigned>(u64Member(doc, "fetchThreads"));
    p.fetchWidth =
        static_cast<unsigned>(u64Member(doc, "fetchWidth"));
    p.policy = policyKindFromString(strMember(doc, "policy"));
    if (const JsonValue *o = doc.find("overrides"))
        p.overrides = overridesFromWire(*o);
    if (const JsonValue *v = doc.find("recordPath"))
        p.recordPath = v->asString();
    if (const JsonValue *v = doc.find("recordPadCycles"))
        p.recordPadCycles = v->asUInt64();
    if (const JsonValue *v = doc.find("saveCheckpointPath"))
        p.saveCheckpointPath = v->asString();
    if (const JsonValue *v = doc.find("restoreCheckpointPath"))
        p.restoreCheckpointPath = v->asString();
    return p;
}

std::string
outcomeToWireJson(const PointOutcome &outcome)
{
    std::ostringstream os;
    JsonWriter jw(os, 0);
    jw.beginObject();
    jw.field("served", outcome.ranWarmup  ? "warmup"
                       : outcome.restored ? "restored"
                                          : "direct");
    if (outcome.restored)
        jw.field("diskHit", outcome.diskHit);
    jw.field("warmupSeconds", outcome.warmupSeconds);
    jw.field("measureSeconds", outcome.measureSeconds);
    jw.key("result");
    jw.raw(resultToWireJson(outcome.result));
    jw.endObject();
    return os.str();
}

PointOutcome
outcomeFromWireJson(const JsonValue &doc)
{
    if (!doc.isObject())
        codecFail(csprintf("an outcome must be an object, found %s",
                           doc.kindName()));
    PointOutcome o;
    std::string served = strMember(doc, "served");
    if (served == "warmup")
        o.ranWarmup = true;
    else if (served == "restored")
        o.restored = true;
    else if (served == "direct")
        o.direct = true;
    else
        codecFail(csprintf("unknown \"served\" value \"%s\"",
                           served.c_str()));
    if (const JsonValue *v = doc.find("diskHit"))
        o.diskHit = v->asBool();
    o.warmupSeconds = numMember(doc, "warmupSeconds");
    o.measureSeconds = numMember(doc, "measureSeconds");
    o.result = resultFromWireJson(member(doc, "result"));
    return o;
}

void
writeExecutorParamsJson(JsonWriter &jw, const ExecutorParams &p)
{
    jw.beginObject();
    jw.field("warmupCycles", p.warmupCycles);
    jw.field("measureCycles", p.measureCycles);
    jw.field("seed", p.seed);
    jw.field("cycleSkip", p.cycleSkip);
    jw.endObject();
}

ExecutorParams
executorParamsFromWireJson(const JsonValue &doc)
{
    if (!doc.isObject())
        codecFail(csprintf("\"params\" must be an object, found %s",
                           doc.kindName()));
    ExecutorParams p;
    p.warmupCycles = u64Member(doc, "warmupCycles");
    p.measureCycles = u64Member(doc, "measureCycles");
    p.seed = u64Member(doc, "seed");
    const JsonValue &skip = member(doc, "cycleSkip");
    p.cycleSkip = skip.asBool();
    return p;
}

std::string
sweepRequestKey(const SweepRequest &request)
{
    std::string s = csprintf(
        "smtfetch-sweep-v1|warmup=%llu|measure=%llu|seed=%llu|"
        "skip=%d|points=%zu",
        (unsigned long long)request.warmupCycles,
        (unsigned long long)request.measureCycles,
        (unsigned long long)request.seed, request.cycleSkip ? 1 : 0,
        request.points.size());
    for (const GridPoint &p : request.points) {
        s += csprintf("|%s/%s/%u.%u/%s", p.workload.c_str(),
                      engineName(p.engine), p.fetchThreads,
                      p.fetchWidth, policyName(p.policy));
        std::string variant = p.overrides.describe();
        if (!variant.empty())
            s += "/" + variant;
        if (!p.recordPath.empty())
            s += "/record=" + p.recordPath;
        if (!p.saveCheckpointPath.empty())
            s += "/save=" + p.saveCheckpointPath;
        if (!p.restoreCheckpointPath.empty())
            s += "/restore=" + p.restoreCheckpointPath;
    }
    return csprintf("%016llx",
                    (unsigned long long)Rng::hashString(s));
}

} // namespace smt
