/**
 * @file
 * The scheduler half of the ExperimentRunner split: SweepScheduler
 * owns a bounded worker pool and a round-robin run queue of submitted
 * sweeps. Each worker claims ONE grid point from the job at the front
 * of the queue, then sends the job to the back, so concurrent
 * sweeps — e.g. several serve clients — make fair interleaved
 * progress instead of queueing whole-sweep FIFO. Points themselves
 * run through a PointExecutor (sim/executor.hh), which shares warmup
 * snapshots through the scheduler's WarmupSnapshotCache.
 */

#ifndef SMTFETCH_SIM_SCHEDULER_HH
#define SMTFETCH_SIM_SCHEDULER_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "sim/executor.hh"
#include "sim/experiment.hh"
#include "sim/journal.hh"

namespace smt
{

class WarmupSnapshotCache;

/**
 * Queues SweepRequests and runs their grid points across a bounded
 * worker pool. Thread-safe throughout; jobs (and their reports) live
 * until the scheduler is destroyed.
 */
class SweepScheduler
{
  public:
    using JobId = std::uint64_t;

    enum class JobState
    {
        Queued,   //!< submitted, no point finished yet
        Running,  //!< at least one point finished
        Done,     //!< every point finished; report available
        Failed,   //!< a point threw; error captures the message
        Cancelled //!< cancelled before every point finished
    };

    /** A point-granularity progress snapshot. */
    struct JobStatus
    {
        JobState state = JobState::Queued;
        std::string name;
        std::size_t totalPoints = 0;
        std::size_t completedPoints = 0;

        /** Points skipped by cancellation (terminal states only). */
        std::size_t cancelledPoints = 0;

        /** Warmups this job led / points served by snapshot
         *  restore so far (the cache-effectiveness live view). */
        std::size_t warmupRuns = 0;
        std::size_t restoredRuns = 0;

        /** Points satisfied from a resume journal at submit time
         *  (distributed sweeps; included in completedPoints). */
        std::size_t journaledPoints = 0;

        /** What went wrong (Failed only). */
        std::string error;

        /**
         * Global completion sequence numbers of this job's first and
         * last finished point (0 when none finished yet). Every point
         * completion in the scheduler — across all jobs — gets the
         * next number, so interleaving between concurrent jobs is
         * directly observable: under round-robin, a short job
         * submitted second still finishes before a long job submitted
         * first.
         */
        std::uint64_t firstDoneSeq = 0;
        std::uint64_t lastDoneSeq = 0;
    };

    /**
     * @param workers pool size; 0 picks the host concurrency.
     * @param cache shared warmup-snapshot cache for reuse-enabled
     *        requests (null: every request runs the direct path).
     * @param default_snapshot_dir disk tier for reuse-enabled
     *        requests that don't name their own checkpointDir
     *        (empty: memory-only for those requests).
     */
    explicit SweepScheduler(unsigned workers = 0,
                            WarmupSnapshotCache *cache = nullptr,
                            std::string default_snapshot_dir = "");
    ~SweepScheduler();

    SweepScheduler(const SweepScheduler &) = delete;
    SweepScheduler &operator=(const SweepScheduler &) = delete;

    /**
     * Executes one claimed grid point somewhere other than this
     * process (the distributed coordinator's worker pool). Called
     * outside the scheduler lock from worker threads; must be
     * thread-safe; throwing fails the job like an executor throw.
     */
    using PointRunner =
        std::function<PointOutcome(std::size_t, const GridPoint &)>;

    /** Per-submit extras for distributed/resumable sweeps. */
    struct SubmitOptions
    {
        /** Non-null routes every point through this instead of the
         *  in-process PointExecutor. */
        PointRunner runner;

        /** Journal every completed point here (resume support). */
        std::shared_ptr<SweepJournal> journal;

        /** Points already completed by a previous run: prefilled
         *  into the report, never claimed, never re-simulated. */
        std::vector<JournalEntry> precompleted;

        /**
         * Dispatch at most one point per not-yet-warmed warmup
         * group at a time, so a group's first point publishes the
         * disk snapshot before its siblings (possibly in other
         * worker processes, which share nothing but the disk tier)
         * are dispatched. Warmups then run once per group across
         * the whole fleet. Only meaningful with a runner whose
         * executors persist snapshots to a shared checkpointDir.
         */
        bool groupGate = false;
    };

    /**
     * Queue a sweep. Validates the request up front (duplicate
     * record paths throw std::invalid_argument) and precomputes the
     * warmup grouping. Returns immediately.
     */
    JobId submit(const SweepRequest &request, std::string name = "");

    /** Queue a sweep with distributed/resume extras. */
    JobId submit(const SweepRequest &request, std::string name,
                 SubmitOptions options);

    /**
     * Stop scheduling a job's remaining points. Points already
     * executing finish (and are reported); pending points are
     * skipped. Returns false when the job is unknown or already
     * terminal.
     */
    bool cancel(JobId id);

    /** Progress snapshot; nullopt for unknown ids. */
    std::optional<JobStatus> status(JobId id) const;

    /**
     * Block until the job is terminal. Returns the report on Done,
     * rethrows the failing point's exception on Failed, throws
     * std::runtime_error on Cancelled.
     */
    SweepReport wait(JobId id);

    /** The finished report; null unless the job is Done. */
    const SweepReport *report(JobId id) const;

    /** Pool size (for status/introspection). */
    unsigned workerCount() const { return (unsigned)pool.size(); }

  private:
    struct Job
    {
        std::string name;
        std::vector<GridPoint> points;
        PointExecutor executor;
        bool reuseEnabled = false;

        /** Distributed/resume extras (see SubmitOptions). */
        PointRunner runner;
        std::shared_ptr<SweepJournal> journal;
        bool groupGate = false;
        std::vector<std::string> groupKeys; //!< gating only; ""=free
        std::unordered_set<std::string> readyGroups;
        std::unordered_set<std::string> leadingGroups;

        JobState state = JobState::Queued;
        std::deque<std::size_t> pending; //!< unclaimed, grid order
        bool tokenQueued = false; //!< this job has a runQueue token
        std::size_t inFlight = 0; //!< points executing right now
        std::size_t completed = 0;
        bool cancelRequested = false;
        std::exception_ptr error;
        std::string errorText;

        SweepReport report; //!< results grow in place, grid order
        std::uint64_t firstDoneSeq = 0;
        std::uint64_t lastDoneSeq = 0;
        std::uint64_t evictionsAtSubmit = 0;
        std::chrono::steady_clock::time_point submitTime;

        Job(const SweepRequest &request, std::string name,
            WarmupSnapshotCache *cache,
            const std::string &default_snapshot_dir,
            SubmitOptions options);
    };

    void workerLoop();

    /**
     * Under `m`: pick the first dispatchable pending point. Local
     * jobs always take the front (grid-order FIFO); gated jobs skip
     * points whose warmup group has an in-flight leader and no
     * published snapshot yet. nullopt when every pending point is
     * gated (a completion re-queues the job's token).
     */
    std::optional<std::size_t> claimLocked(Job &job);

    /** Under `m`: move a drained job to its terminal state. */
    void finalizeLocked(Job &job, JobState terminal);

    mutable std::mutex m;
    std::condition_variable cvWork; //!< run-queue pushes
    std::condition_variable cvDone; //!< job state transitions
    std::map<JobId, std::unique_ptr<Job>> jobs;
    std::deque<JobId> runQueue; //!< ≤ 1 token per unfinished job
    JobId nextId = 1;
    std::uint64_t doneSeq = 0; //!< global completion counter
    bool stopping = false;

    WarmupSnapshotCache *cache;
    std::string defaultSnapshotDir;
    std::vector<std::thread> pool;
};

} // namespace smt

#endif // SMTFETCH_SIM_SCHEDULER_HH
