#include "sim/sweep_spec.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "bpred/engine_registry.hh"
#include "util/logging.hh"
#include "workload/corpus.hh"
#include "workload/profiles.hh"
#include "workload/trace.hh"
#include "workload/workloads.hh"

namespace smt
{

namespace
{

std::string
lower(const std::string &s)
{
    std::string out = s;
    std::transform(out.begin(), out.end(), out.begin(), [](char c) {
        return static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    });
    return out;
}

[[noreturn]] void
specFail(const std::string &context, const std::string &what)
{
    throw SpecError(context + ": " + what);
}

/** Checked number-to-unsigned conversion with spec context. */
std::uint64_t
uintValue(const JsonValue &v, const std::string &context,
          const char *what)
{
    if (!v.isNumber())
        specFail(context, csprintf("%s must be a number, found %s",
                                   what, v.kindName()));
    try {
        return v.asUInt64();
    } catch (const JsonTypeError &) {
        specFail(context,
                 csprintf("%s must be a non-negative integer, "
                          "found %s",
                          what, v.dump().c_str()));
    }
}

/** uintValue additionally bounded to 32 bits (no silent wrap). */
unsigned
uint32Value(const JsonValue &v, const std::string &context,
            const char *what)
{
    std::uint64_t value = uintValue(v, context, what);
    if (value > 0xffffffffull)
        specFail(context, csprintf("%s is out of range: %llu", what,
                                   (unsigned long long)value));
    return static_cast<unsigned>(value);
}

const std::string &
stringValue(const JsonValue &v, const std::string &context,
            const char *what)
{
    if (!v.isString())
        specFail(context, csprintf("%s must be a string, found %s",
                                   what, v.kindName()));
    return v.asString();
}

/** A scalar spec value, or each element of an array value. */
std::vector<const JsonValue *>
scalarOrArray(const JsonValue &v)
{
    std::vector<const JsonValue *> out;
    if (v.isArray()) {
        for (const auto &e : v.asArray())
            out.push_back(&e);
    } else {
        out.push_back(&v);
    }
    return out;
}

std::string
knownWorkloadNames()
{
    std::string names;
    for (const auto &w : table2Workloads())
        names += (names.empty() ? "" : ", ") + w.name;
    for (const auto &p : allProfiles())
        names += ", " + p.name;
    return names;
}

/**
 * Check the N.X ranges the core accepts (CoreParams::validate), so
 * --validate rejects what a run would abort on.
 */
std::pair<unsigned, unsigned>
checkPolicyRange(std::uint64_t n, std::uint64_t x,
                 const std::string &context)
{
    if (n == 0 || n > maxThreads)
        specFail(context,
                 csprintf("policy threads %llu out of range [1, %u]",
                          (unsigned long long)n, maxThreads));
    if (x == 0 || x > 16)
        specFail(context,
                 csprintf("policy width %llu out of range [1, 16]",
                          (unsigned long long)x));
    return {static_cast<unsigned>(n), static_cast<unsigned>(x)};
}

/** Parse "N.X" (e.g. "2.8") or {"threads": N, "width": X}. */
std::pair<unsigned, unsigned>
parsePolicyPoint(const JsonValue &v, const std::string &context)
{
    if (v.isObject()) {
        const JsonValue *n = v.find("threads");
        const JsonValue *x = v.find("width");
        if (n == nullptr || x == nullptr || v.size() != 2)
            specFail(context, "a policy object must have exactly "
                              "the keys \"threads\" and \"width\"");
        return checkPolicyRange(
            uintValue(*n, context, "policy threads"),
            uintValue(*x, context, "policy width"), context);
    }
    const std::string &s = stringValue(v, context, "a policy");
    std::size_t dot = s.find('.');
    bool ok = dot != std::string::npos && dot > 0 &&
              dot + 1 < s.size();
    if (ok) {
        for (std::size_t i = 0; i < s.size(); ++i)
            if (i != dot && (s[i] < '0' || s[i] > '9'))
                ok = false;
    }
    if (!ok || s.size() > 6)
        specFail(context,
                 csprintf("bad policy \"%s\" (expected \"N.X\", "
                          "e.g. \"2.8\")",
                          s.c_str()));
    return checkPolicyRange(
        std::strtoull(s.substr(0, dot).c_str(), nullptr, 10),
        std::strtoull(s.substr(dot + 1).c_str(), nullptr, 10),
        context);
}

/**
 * Expand an overrides object into the cross product of its (possibly
 * array-valued) members, in key order.
 */
std::vector<RunOverrides>
parseOverrides(const JsonValue &obj, const std::string &context)
{
    if (!obj.isObject())
        specFail(context,
                 csprintf("\"overrides\" must be an object, found %s",
                          obj.kindName()));

    std::vector<RunOverrides> combos = {RunOverrides{}};
    for (const auto &[key, value] : obj.asObject()) {
        if (value.isArray() && value.size() == 0)
            specFail(context,
                     csprintf("override \"%s\" must not be an "
                              "empty array",
                              key.c_str()));
        std::vector<RunOverrides> next;
        for (const JsonValue *v : scalarOrArray(value)) {
            for (RunOverrides ov : combos) {
                if (key == "ftqEntries") {
                    unsigned n =
                        uint32Value(*v, context, "ftqEntries");
                    if (n == 0)
                        specFail(context, "ftqEntries must be at "
                                          "least 1");
                    ov.ftqEntries = n;
                } else if (key == "fetchBufferSize") {
                    unsigned n =
                        uint32Value(*v, context, "fetchBufferSize");
                    if (n == 0)
                        specFail(context, "fetchBufferSize must be "
                                          "at least 1");
                    ov.fetchBufferSize = n;
                } else if (key == "robEntries") {
                    unsigned n =
                        uint32Value(*v, context, "robEntries");
                    if (n < 8)
                        specFail(context, "robEntries must be at "
                                          "least 8");
                    ov.robEntries = n;
                } else if (key == "longLoadPolicy") {
                    ov.longLoadPolicy = longLoadPolicyFromString(
                        stringValue(*v, context, "longLoadPolicy"));
                } else if (key == "longLoadThreshold") {
                    ov.longLoadThreshold =
                        uintValue(*v, context, "longLoadThreshold");
                } else if (key == "predictorShift") {
                    std::uint64_t shift =
                        uintValue(*v, context, "predictorShift");
                    // Beyond 6 the smallest Table 3 structure
                    // (streamL1Entries = 1024, 4-way) shrinks below
                    // a usable geometry and the run aborts.
                    if (shift > 6)
                        specFail(context, "predictorShift must be "
                                          "at most 6 (larger shifts "
                                          "shrink predictor tables "
                                          "below usable sizes)");
                    ov.predictorShift =
                        static_cast<unsigned>(shift);
                } else if (const EngineParamSpec *ps =
                               EngineRegistry::instance().findParam(
                                   key);
                           ps != nullptr) {
                    // Engine parameters resolve through the registry
                    // schemas; values apply via RunOverrides.
                    std::uint64_t n =
                        uintValue(*v, context, key.c_str());
                    if (!ps->inRange(n))
                        specFail(
                            context,
                            csprintf("engine parameter \"%s\" value "
                                     "%llu out of range [%llu, %llu]",
                                     key.c_str(),
                                     (unsigned long long)n,
                                     (unsigned long long)ps->minValue,
                                     (unsigned long long)
                                         ps->maxValue));
                    ov.engineParams.emplace_back(key, n);
                } else {
                    specFail(
                        context,
                        csprintf("unknown override \"%s\" (known: "
                                 "ftqEntries, fetchBufferSize, "
                                 "robEntries, longLoadPolicy, "
                                 "longLoadThreshold, predictorShift, "
                                 "or any engine parameter listed by "
                                 "smtsim --list-engines)",
                                 key.c_str()));
                }
                next.push_back(ov);
            }
        }
        combos = std::move(next);
    }
    return combos;
}

SweepBlock
parseSweepBlock(const JsonValue &v, const std::string &context)
{
    if (!v.isObject())
        specFail(context, csprintf("a sweep must be an object, "
                                   "found %s",
                                   v.kindName()));

    SweepBlock block;
    for (const auto &[key, value] : v.asObject()) {
        if (key == "workloads") {
            for (const JsonValue *w : scalarOrArray(value)) {
                std::string name;
                if (w->isObject() && w->find("corpus") != nullptr) {
                    // {"corpus": "manifest.json", "mix": [labels]}:
                    // resolve benchmark labels through a trace-corpus
                    // manifest into per-thread trace paths, verifying
                    // each trace's checksum and header up front.
                    const JsonValue *mix = w->find("mix");
                    if (mix == nullptr || w->size() != 2)
                        specFail(context,
                                 "a corpus workload object must "
                                 "have exactly the keys \"corpus\" "
                                 "(a manifest path) and \"mix\" (a "
                                 "benchmark label or an array of "
                                 "per-thread labels)");
                    const std::string &manifest_path = stringValue(
                        *w->find("corpus"), context,
                        "a corpus manifest path");
                    try {
                        CorpusManifest manifest =
                            loadCorpusManifest(manifest_path);
                        name = "trace:";
                        bool first = true;
                        for (const JsonValue *l :
                             scalarOrArray(*mix)) {
                            const std::string &label = stringValue(
                                *l, context, "a mix label");
                            const CorpusEntry &entry =
                                manifest.find(label);
                            validateCorpusEntry(manifest, entry);
                            name += (first ? "" : ",") +
                                    entry.resolvedPath;
                            first = false;
                        }
                        if (first)
                            specFail(context,
                                     "\"mix\" must name at least "
                                     "one benchmark label");
                    } catch (const CorpusError &e) {
                        specFail(context, e.what());
                    }
                } else if (w->isObject()) {
                    // {"trace": "path.trc"} or {"trace": [p0, p1]}:
                    // a file-backed replay workload, one thread per
                    // path.
                    const JsonValue *tr = w->find("trace");
                    if (tr == nullptr || w->size() != 1)
                        specFail(context,
                                 "a workload object must have "
                                 "exactly the key \"trace\" (a "
                                 "path or an array of per-thread "
                                 "paths) or the keys \"corpus\" "
                                 "and \"mix\"");
                    name = "trace:";
                    bool first = true;
                    for (const JsonValue *p : scalarOrArray(*tr)) {
                        const std::string &path = stringValue(
                            *p, context, "a trace path");
                        if (path.empty() ||
                            path.find(',') != std::string::npos)
                            specFail(context,
                                     csprintf("bad trace path "
                                              "\"%s\" (must be "
                                              "non-empty, without "
                                              "commas)",
                                              path.c_str()));
                        name += (first ? "" : ",") + path;
                        first = false;
                    }
                    if (first)
                        specFail(context,
                                 "\"trace\" must name at least one "
                                 "path");
                } else {
                    name = stringValue(*w, context, "a workload");
                }
                validateWorkloadName(name);
                block.workloads.push_back(name);
            }
        } else if (key == "engines") {
            for (const JsonValue *e : scalarOrArray(value)) {
                const std::string &name =
                    stringValue(*e, context, "an engine");
                if (lower(name) == "all") {
                    // Every registered engine, zoo included.
                    for (EngineKind k : allEngines())
                        block.engines.push_back(k);
                } else if (lower(name) == "paper") {
                    for (EngineKind k : paperEngines())
                        block.engines.push_back(k);
                } else {
                    block.engines.push_back(
                        engineKindFromString(name));
                }
            }
        } else if (key == "policies") {
            for (const JsonValue *p : scalarOrArray(value))
                block.policies.push_back(
                    parsePolicyPoint(*p, context));
        } else if (key == "selection") {
            block.selections.clear();
            for (const JsonValue *s : scalarOrArray(value))
                block.selections.push_back(policyKindFromString(
                    stringValue(*s, context, "a selection policy")));
        } else if (key == "overrides") {
            block.overrides = parseOverrides(value, context);
        } else {
            specFail(context,
                     csprintf("unknown sweep key \"%s\" (known: "
                              "workloads, engines, policies, "
                              "selection, overrides)",
                              key.c_str()));
        }
    }

    if (block.workloads.empty())
        specFail(context, "a sweep needs at least one workload");
    if (block.policies.empty())
        specFail(context, "a sweep needs at least one policy");
    if (block.selections.empty())
        specFail(context, "\"selection\" must not be an empty array");
    if (block.engines.empty()) {
        if (v.find("engines") != nullptr)
            specFail(context,
                     "\"engines\" must not be an empty array");
        // Default stays the paper trio (pre-zoo specs keep their
        // meaning); "all" opts into every registered engine.
        block.engines.assign(paperEngines().begin(),
                             paperEngines().end());
    }

    // The fetch buffer must cover the block's widest fetch policy
    // (CoreParams::validate), so --validate catches it up front.
    unsigned max_width = 0;
    for (auto [n, x] : block.policies)
        max_width = std::max(max_width, x);
    for (const auto &ov : block.overrides) {
        if (ov.fetchBufferSize && *ov.fetchBufferSize < max_width)
            specFail(context,
                     csprintf("fetchBufferSize %u is smaller than "
                              "the widest fetch policy (%u)",
                              *ov.fetchBufferSize, max_width));
    }
    return block;
}

} // namespace

EngineKind
engineKindFromString(const std::string &name)
{
    const EngineDescriptor *d = EngineRegistry::instance().find(name);
    if (d == nullptr)
        throw SpecError(
            csprintf("unknown fetch engine \"%s\" (known: %s, "
                     "paper, all)",
                     name.c_str(),
                     EngineRegistry::instance().knownNames().c_str()));
    return d->kind;
}

PolicyKind
policyKindFromString(const std::string &name)
{
    std::string n = lower(name);
    if (n == "icount")
        return PolicyKind::ICount;
    if (n == "rr" || n == "round-robin" || n == "roundrobin")
        return PolicyKind::RoundRobin;
    throw SpecError(csprintf("unknown selection policy \"%s\" "
                             "(known: icount, round-robin)",
                             name.c_str()));
}

LongLoadPolicy
longLoadPolicyFromString(const std::string &name)
{
    std::string n = lower(name);
    if (n == "none")
        return LongLoadPolicy::None;
    if (n == "stall")
        return LongLoadPolicy::Stall;
    if (n == "flush")
        return LongLoadPolicy::Flush;
    throw SpecError(csprintf("unknown long-load policy \"%s\" "
                             "(known: none, stall, flush)",
                             name.c_str()));
}

std::string
defaultConfigDir()
{
    const char *env = std::getenv("SMTFETCH_CONFIG_DIR");
    if (env != nullptr && env[0] != '\0')
        return env;
#ifdef SMTFETCH_CONFIG_DIR
    return SMTFETCH_CONFIG_DIR;
#else
    return "configs";
#endif
}

void
validateWorkloadName(const std::string &name)
{
    for (const auto &w : table2Workloads())
        if (w.name == name)
            return;
    for (const auto &p : allProfiles())
        if (p.name == name)
            return;
    if (isTraceWorkloadName(name)) {
        // Syntax-only here: the files themselves are opened at run
        // time, so a spec can be validated before its traces are
        // recorded.
        std::string paths = name.substr(6);
        if (paths.empty() || paths.front() == ',' ||
            paths.back() == ',' ||
            paths.find(",,") != std::string::npos)
            throw SpecError(csprintf(
                "bad trace workload \"%s\" (expected "
                "\"trace:<path>[,<path>...]\" with non-empty "
                "paths)",
                name.c_str()));
        return;
    }
    throw SpecError(csprintf("unknown workload \"%s\" (known: %s, "
                             "or \"trace:<path>[,<path>...]\")",
                             name.c_str(),
                             knownWorkloadNames().c_str()));
}

std::vector<GridPoint>
SweepSpec::expand() const
{
    std::vector<GridPoint> points;
    for (const auto &block : sweeps)
        for (const auto &w : block.workloads)
            for (EngineKind e : block.engines)
                for (auto [n, x] : block.policies)
                    for (PolicyKind sel : block.selections)
                        for (const auto &ov : block.overrides)
                            points.push_back({w, e, n, x, sel, ov});
    return points;
}

SweepRequest
SweepSpec::makeRequest() const
{
    SweepRequest request;
    request.points = expand();
    request.warmupCycles = warmupCycles;
    request.measureCycles = measureCycles;
    request.seed = seed;
    request.cycleSkip = cycleSkip;
    request.reuseWarmup = checkpointAfterWarmup;
    request.checkpointDir = checkpointDir;
    return request;
}

SweepSpec
SweepSpec::fromJson(const JsonValue &doc, const std::string &context)
{
    if (!doc.isObject())
        specFail(context,
                 csprintf("a spec must be a JSON object, found %s",
                          doc.kindName()));

    SweepSpec spec;
    const JsonValue *sweeps = nullptr;
    JsonValue::Object inline_sweep;

    for (const auto &[key, value] : doc.asObject()) {
        if (key == "name") {
            spec.name = stringValue(value, context, "\"name\"");
        } else if (key == "type") {
            const std::string &t =
                stringValue(value, context, "\"type\"");
            if (lower(t) == "grid")
                spec.type = SpecType::Grid;
            else if (lower(t) == "characteristics")
                spec.type = SpecType::Characteristics;
            else
                specFail(context,
                         csprintf("unknown spec type \"%s\" (known: "
                                  "grid, characteristics)",
                                  t.c_str()));
        } else if (key == "warmupCycles") {
            spec.warmupCycles =
                uintValue(value, context, "warmupCycles");
        } else if (key == "measureCycles") {
            spec.measureCycles =
                uintValue(value, context, "measureCycles");
        } else if (key == "seed") {
            spec.seed = uintValue(value, context, "seed");
        } else if (key == "output") {
            spec.output = stringValue(value, context, "\"output\"");
        } else if (key == "checkpointAfterWarmup") {
            if (!value.isBool())
                specFail(context,
                         csprintf("checkpointAfterWarmup must be a "
                                  "boolean, found %s",
                                  value.kindName()));
            spec.checkpointAfterWarmup = value.asBool();
        } else if (key == "cycleSkip") {
            if (!value.isBool())
                specFail(context,
                         csprintf("cycleSkip must be a boolean, "
                                  "found %s",
                                  value.kindName()));
            spec.cycleSkip = value.asBool();
        } else if (key == "checkpointDir") {
            spec.checkpointDir =
                stringValue(value, context, "\"checkpointDir\"");
            if (spec.checkpointDir.empty())
                specFail(context,
                         "checkpointDir must not be empty (omit the "
                         "key to keep snapshots in memory)");
        } else if (key == "distributed") {
            if (!value.isObject())
                specFail(context,
                         csprintf("distributed must be an object "
                                  "like {\"workers\": 4}, found %s",
                                  value.kindName()));
            for (const auto &[dkey, dvalue] : value.asObject()) {
                if (dkey == "workers") {
                    std::uint64_t w = uintValue(
                        dvalue, context, "distributed.workers");
                    if (w == 0 || w > 256)
                        specFail(context,
                                 csprintf("distributed.workers must "
                                          "be in [1, 256], found "
                                          "%llu",
                                          (unsigned long long)w));
                    spec.distributedWorkers =
                        static_cast<unsigned>(w);
                } else {
                    specFail(context,
                             csprintf("unknown distributed key "
                                      "\"%s\" (known: workers)",
                                      dkey.c_str()));
                }
            }
        } else if (key == "instructions") {
            spec.instructions =
                uintValue(value, context, "instructions");
        } else if (key == "sweeps") {
            sweeps = &value;
        } else if (key == "workloads" || key == "engines" ||
                   key == "policies" || key == "selection" ||
                   key == "overrides") {
            inline_sweep.emplace_back(key, value);
        } else {
            specFail(context,
                     csprintf("unknown spec key \"%s\" (known: "
                              "name, type, warmupCycles, "
                              "measureCycles, seed, output, "
                              "checkpointAfterWarmup, checkpointDir, "
                              "cycleSkip, distributed, instructions, "
                              "sweeps, workloads, engines, policies, "
                              "selection, overrides)",
                              key.c_str()));
        }
    }

    if (spec.name.empty())
        specFail(context, "a spec needs a non-empty \"name\"");
    if (spec.measureCycles == 0)
        specFail(context, "measureCycles must be positive");

    if (sweeps != nullptr && !inline_sweep.empty())
        specFail(context, "give either top-level "
                          "workloads/engines/policies or a "
                          "\"sweeps\" array, not both");

    if (sweeps != nullptr) {
        if (!sweeps->isArray() || sweeps->size() == 0)
            specFail(context, "\"sweeps\" must be a non-empty array "
                              "of sweep objects");
        for (const auto &s : sweeps->asArray())
            spec.sweeps.push_back(parseSweepBlock(s, context));
    } else if (!inline_sweep.empty()) {
        spec.sweeps.push_back(parseSweepBlock(
            JsonValue(std::move(inline_sweep)), context));
    }

    if (spec.type == SpecType::Grid && spec.sweeps.empty())
        specFail(context, "a grid spec needs workloads/policies "
                          "(top-level or in \"sweeps\")");
    if (spec.type == SpecType::Characteristics &&
        !spec.sweeps.empty())
        specFail(context,
                 "a characteristics spec takes no sweeps");
    if (spec.type == SpecType::Characteristics &&
        spec.instructions == 0)
        specFail(context, "instructions must be positive");

    return spec;
}

SweepSpec
SweepSpec::fromString(const std::string &text,
                      const std::string &context)
{
    try {
        return fromJson(jsonParse(text), context);
    } catch (const JsonParseError &e) {
        throw SpecError(context + ": " + e.what());
    }
}

SweepSpec
SweepSpec::fromFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw SpecError(csprintf("cannot open spec file %s",
                                 path.c_str()));
    std::string text((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    return fromString(text, path);
}

SweepReport
runSpec(const SweepSpec &spec)
{
    if (spec.type != SpecType::Grid)
        throw SpecError(csprintf("spec \"%s\" is not a grid spec",
                                 spec.name.c_str()));
    return ExperimentRunner().run(spec.makeRequest());
}

std::vector<BenchmarkCharacteristics>
runCharacteristics(std::uint64_t instructions)
{
    std::vector<BenchmarkCharacteristics> rows;
    for (const auto &prof : allProfiles()) {
        auto img = buildImage(prof, 0x400000, 0x40000000);
        SyntheticTraceStream ts(img);
        for (std::uint64_t i = 0; i < instructions; ++i)
            ts.next();
        const auto &s = ts.stats();

        BenchmarkCharacteristics row;
        row.benchmark = prof.name;
        row.ilp = prof.benchClass == BenchClass::ILP;
        row.paperBlockSize = prof.avgBlockSize;
        row.blockSize = s.avgBlockSize();
        row.streamLength = s.avgStreamLength();
        row.takenRate =
            s.ctis ? double(s.takenCtis) / double(s.ctis) : 0;
        row.loadFraction = double(s.loads) / double(s.insts);
        rows.push_back(row);
    }
    return rows;
}

std::vector<std::pair<std::string, double>>
characteristicsMetrics(const std::vector<BenchmarkCharacteristics> &rows)
{
    std::vector<std::pair<std::string, double>> metrics;
    for (const auto &r : rows) {
        metrics.emplace_back(r.benchmark + ".bbSize", r.blockSize);
        metrics.emplace_back(r.benchmark + ".streamLen",
                             r.streamLength);
        metrics.emplace_back(r.benchmark + ".takenRate",
                             r.takenRate);
        metrics.emplace_back(r.benchmark + ".loadFrac",
                             r.loadFraction);
    }
    return metrics;
}

std::string
benchRecordDir(const std::string &dir_override)
{
    if (!dir_override.empty())
        return dir_override;
    const char *env = std::getenv("SMTFETCH_JSON_DIR");
    return env != nullptr && env[0] != '\0' ? env : ".";
}

void
ensureWritableDir(const std::string &dir)
{
    std::string probe =
        dir + "/.smtfetch_write_probe_" + std::to_string(
#ifdef _WIN32
                                              0
#else
                                              ::getpid()
#endif
        );
    {
        std::ofstream os(probe);
        if (!os || !(os << "probe"))
            throw SpecError(csprintf(
                "output directory \"%s\" is not writable (cannot "
                "create files in it) — create the directory or "
                "pass a writable one",
                dir.c_str()));
    }
    std::remove(probe.c_str());
}

bool
writeBenchRecord(
    const std::string &bench,
    const std::vector<ExperimentResult> &results,
    const std::vector<std::pair<std::string, double>> &metrics,
    const std::string &dir_override,
    const SweepTiming *timing)
{
    const char *off = std::getenv("SMTFETCH_NO_JSON");
    if (off != nullptr && off[0] != '\0' && off[0] != '0')
        return true;

    std::string path =
        benchRecordDir(dir_override) + "/BENCH_" + bench + ".json";
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "warning: cannot write %s\n",
                     path.c_str());
        return false;
    }
    ExperimentRunner::writeJson(os, bench, results, metrics, timing);
    std::printf("wrote %s\n", path.c_str());
    return true;
}

} // namespace smt
