#include "sim/checkpoint.hh"

#include <bit>
#include <cstring>
#include <fstream>
#include <ostream>

#include "util/logging.hh"

namespace smt
{

namespace
{

/** Cap on serialized string lengths (names, config keys). */
constexpr std::uint32_t maxStringBytes = 1u << 20;

void
putLe(unsigned char *out, std::uint64_t v, unsigned bytes)
{
    for (unsigned i = 0; i < bytes; ++i)
        out[i] = static_cast<unsigned char>(v >> (8 * i));
}

std::uint64_t
getLe(const unsigned char *in, unsigned bytes)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < bytes; ++i)
        v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
    return v;
}

} // namespace

// ---------------------------------------------------------------------
// CheckpointWriter
// ---------------------------------------------------------------------

CheckpointWriter::CheckpointWriter(std::ostream &os, std::string context,
                                   const std::string &config_key)
    : os(os), context(std::move(context))
{
    raw(checkpointMagic, sizeof(checkpointMagic));
    u16(checkpointFormatVersion);
    u16(0); // reserved
    countPos = os.tellp();
    u32(0); // component count, backpatched by finish()
    str(config_key);
}

void
CheckpointWriter::fail(const std::string &what) const
{
    throw CheckpointError(
        csprintf("%s: %s", context.c_str(), what.c_str()));
}

void
CheckpointWriter::raw(const void *data, std::size_t n)
{
    os.write(static_cast<const char *>(data),
             static_cast<std::streamsize>(n));
    if (!os)
        fail("write failed (disk full or file closed?)");
}

void
CheckpointWriter::begin(const std::string &component)
{
    if (finished)
        fail("begin() after finish()");
    if (inSection)
        fail(csprintf("begin(\"%s\") while section \"%s\" is open",
                      component.c_str(), sectionName.c_str()));
    str(component);
    sectionName = component;
    sectionSizePos = os.tellp();
    u64(0); // payload size, backpatched by end()
    inSection = true;
}

void
CheckpointWriter::end()
{
    if (!inSection)
        fail("end() with no open section");
    std::streampos here = os.tellp();
    std::uint64_t payload = static_cast<std::uint64_t>(
        here - sectionSizePos - std::streamoff(8));
    os.seekp(sectionSizePos);
    u64(payload);
    os.seekp(here);
    if (!os)
        fail("seek failed while patching a section size");
    inSection = false;
    ++components;
}

void
CheckpointWriter::finish()
{
    if (inSection)
        fail("finish() with an open section");
    if (finished)
        return;
    raw(checkpointTrailer, sizeof(checkpointTrailer));
    std::streampos here = os.tellp();
    os.seekp(countPos);
    u32(components);
    os.seekp(here);
    os.flush();
    if (!os)
        fail("flush failed (disk full?)");
    finished = true;
}

void
CheckpointWriter::u8(std::uint8_t v)
{
    raw(&v, 1);
}

void
CheckpointWriter::u16(std::uint16_t v)
{
    unsigned char buf[2];
    putLe(buf, v, 2);
    raw(buf, 2);
}

void
CheckpointWriter::u32(std::uint32_t v)
{
    unsigned char buf[4];
    putLe(buf, v, 4);
    raw(buf, 4);
}

void
CheckpointWriter::u64(std::uint64_t v)
{
    unsigned char buf[8];
    putLe(buf, v, 8);
    raw(buf, 8);
}

void
CheckpointWriter::f64(double v)
{
    u64(std::bit_cast<std::uint64_t>(v));
}

void
CheckpointWriter::str(const std::string &s)
{
    if (s.size() > maxStringBytes)
        fail(csprintf("string of %zu bytes exceeds the %u-byte "
                      "format limit",
                      s.size(), maxStringBytes));
    u32(static_cast<std::uint32_t>(s.size()));
    if (!s.empty())
        raw(s.data(), s.size());
}

// ---------------------------------------------------------------------
// CheckpointReader
// ---------------------------------------------------------------------

CheckpointReader::CheckpointReader(std::istream &is, std::string context)
    : is(is), context(std::move(context))
{
    // Total stream length: the hard upper bound for every declared
    // section size, so forged sizes cannot authorize huge
    // allocations downstream (checkCount validates against them).
    std::streampos start = is.tellg();
    is.seekg(0, std::ios::end);
    std::streampos end_pos = is.tellg();
    is.seekg(start);
    if (!is || end_pos < start)
        fail("cannot determine the file size (unseekable stream?)");
    streamBytes = static_cast<std::uint64_t>(end_pos - start);

    char magic[sizeof(checkpointMagic)];
    is.read(magic, sizeof(magic));
    if (!is || is.gcount() != sizeof(magic))
        fail("file too short for the checkpoint magic (is this a "
             "checkpoint file?)");
    if (std::memcmp(magic, checkpointMagic, sizeof(magic)) != 0)
        fail("bad magic (expected \"SMTCKPT\"); this is not a "
             "checkpoint file");

    std::uint16_t version = u16();
    if (version != checkpointFormatVersion)
        fail(csprintf("format version %u, but this build reads "
                      "version %u — re-save the checkpoint with this "
                      "build",
                      version, checkpointFormatVersion));
    std::uint16_t reserved = u16();
    if (reserved != 0)
        fail(csprintf("reserved header field is %u, expected 0 "
                      "(corrupt header)",
                      reserved));
    declaredCount = u32();
    if (declaredCount == 0)
        fail("checkpoint declares zero components (file was not "
             "finished?)");
    key = str();
}

void
CheckpointReader::fail(const std::string &what) const
{
    std::string where = context + ": checkpoint";
    if (inSection)
        where += csprintf(" (in component \"%s\")",
                          sectionName.c_str());
    throw CheckpointError(
        csprintf("%s: %s", where.c_str(), what.c_str()));
}

void
CheckpointReader::raw(void *data, std::size_t n)
{
    if (inSection) {
        if (n > sectionRemaining)
            fail(csprintf("component payload over-read (%zu bytes "
                          "wanted, %llu left); the declared section "
                          "size disagrees with its content",
                          n,
                          (unsigned long long)sectionRemaining));
        sectionRemaining -= n;
    }
    is.read(static_cast<char *>(data),
            static_cast<std::streamsize>(n));
    if (!is || is.gcount() != static_cast<std::streamsize>(n))
        fail("unexpected end of file (truncated checkpoint)");
}

void
CheckpointReader::begin(const std::string &component)
{
    if (inSection)
        fail(csprintf("begin(\"%s\") while another section is open",
                      component.c_str()));
    if (consumedCount >= declaredCount)
        fail(csprintf("component \"%s\" requested but the file "
                      "declares only %u components (component-count "
                      "mismatch)",
                      component.c_str(), declaredCount));
    std::string name = str();
    if (name != component)
        fail(csprintf("component order mismatch: expected \"%s\", "
                      "found \"%s\" — the checkpoint was written by "
                      "an incompatible build",
                      component.c_str(), name.c_str()));
    sectionName = name;
    sectionRemaining = u64();
    if (sectionRemaining > streamBytes)
        fail(csprintf("section \"%s\" declares %llu payload bytes "
                      "but the whole file holds %llu (corrupt "
                      "section size)",
                      name.c_str(),
                      (unsigned long long)sectionRemaining,
                      (unsigned long long)streamBytes));
    inSection = true;
}

void
CheckpointReader::end()
{
    if (!inSection)
        fail("end() with no open section");
    if (sectionRemaining != 0)
        fail(csprintf("%llu unread payload bytes at section end; "
                      "the declared section size disagrees with its "
                      "content",
                      (unsigned long long)sectionRemaining));
    inSection = false;
    sectionName.clear();
    ++consumedCount;
}

void
CheckpointReader::finish()
{
    if (inSection)
        fail("finish() with an open section");
    if (consumedCount != declaredCount)
        fail(csprintf("consumed %u of the %u declared components "
                      "(component-count mismatch)",
                      consumedCount, declaredCount));
    char trailer[sizeof(checkpointTrailer)];
    is.read(trailer, sizeof(trailer));
    if (!is || is.gcount() != sizeof(trailer))
        fail("missing end trailer (truncated checkpoint)");
    if (std::memcmp(trailer, checkpointTrailer, sizeof(trailer)) != 0)
        fail("corrupt end trailer");
    is.peek();
    if (!is.eof())
        fail("trailing bytes after the end trailer (corrupt or "
             "concatenated file)");
}

std::uint8_t
CheckpointReader::u8()
{
    std::uint8_t v;
    raw(&v, 1);
    return v;
}

std::uint16_t
CheckpointReader::u16()
{
    unsigned char buf[2];
    raw(buf, 2);
    return static_cast<std::uint16_t>(getLe(buf, 2));
}

std::uint32_t
CheckpointReader::u32()
{
    unsigned char buf[4];
    raw(buf, 4);
    return static_cast<std::uint32_t>(getLe(buf, 4));
}

std::uint64_t
CheckpointReader::u64()
{
    unsigned char buf[8];
    raw(buf, 8);
    return getLe(buf, 8);
}

bool
CheckpointReader::b()
{
    std::uint8_t v = u8();
    if (v > 1)
        fail(csprintf("boolean byte holds %u (corrupt payload)", v));
    return v != 0;
}

double
CheckpointReader::f64()
{
    return std::bit_cast<double>(u64());
}

std::string
CheckpointReader::str()
{
    std::uint32_t n = u32();
    if (n > maxStringBytes)
        fail(csprintf("string length %u exceeds the %u-byte format "
                      "limit (corrupt length field)",
                      n, maxStringBytes));
    std::string s(n, '\0');
    if (n > 0)
        raw(s.data(), n);
    return s;
}

std::uint64_t
CheckpointReader::checkCount(std::uint64_t n, std::size_t elem_bytes,
                             const char *what)
{
    // Every serialized element consumes at least elem_bytes from the
    // open section, so a count the section cannot hold is corrupt.
    if (!inSection || n * elem_bytes > sectionRemaining)
        fail(csprintf("%s count %llu does not fit the remaining "
                      "section payload (corrupt count field)",
                      what, (unsigned long long)n));
    return n;
}

OpClass
checkpointReadOpClass(CheckpointReader &r)
{
    std::uint8_t v = r.u8();
    if (v >= numOpClasses)
        r.fail(csprintf("op-class byte holds %u, valid range is "
                        "[0, %u) (corrupt payload)",
                        v, numOpClasses));
    return static_cast<OpClass>(v);
}

// ---------------------------------------------------------------------
// CheckpointFileReader
// ---------------------------------------------------------------------

struct CheckpointFileReader::Impl
{
    std::ifstream is;
};

CheckpointFileReader::CheckpointFileReader(const std::string &path)
    : impl(std::make_unique<Impl>())
{
    impl->is.open(path, std::ios::binary);
    if (!impl->is)
        throw CheckpointError(csprintf(
            "%s: cannot open checkpoint file (does it exist and is "
            "it readable?)",
            path.c_str()));
    r = std::make_unique<CheckpointReader>(impl->is, path);
}

CheckpointFileReader::~CheckpointFileReader() = default;

} // namespace smt
