/**
 * @file
 * Top-level simulation configuration: Table 3 core parameters plus a
 * workload, warmup and measurement windows.
 */

#ifndef SMTFETCH_SIM_SIM_CONFIG_HH
#define SMTFETCH_SIM_SIM_CONFIG_HH

#include <string>

#include "core/params.hh"
#include "workload/workloads.hh"

namespace smt
{

/** Everything needed to run one simulation. */
struct SimConfig
{
    CoreParams core{};
    WorkloadSpec workload{};

    /** Cycles simulated before statistics are cleared. */
    Cycle warmupCycles = 50'000;

    /** Cycles measured after warmup. */
    Cycle measureCycles = 300'000;

    /** Workload-construction seed. */
    std::uint64_t seed = 0;

    /**
     * When non-empty, capture every thread's correct-path stream to
     * this trace file (multithread runs get a ".t<tid>" per-thread
     * suffix; see Simulator::recordPathFor).
     */
    std::string recordPath;

    /** Extra cycles simulated after measurement while recording, so
     *  the captured trace has a replay safety margin. */
    Cycle recordPadCycles = 0;

    /** Human-readable one-line description. */
    std::string describe() const;
};

/**
 * The paper's baseline configuration (Table 3) for a given workload,
 * fetch engine and N.X fetch policy.
 */
SimConfig table3Config(const WorkloadSpec &workload, EngineKind engine,
                       unsigned fetch_threads, unsigned fetch_width,
                       PolicyKind policy = PolicyKind::ICount);

/** Same, looking the workload up by Table 2 name or benchmark name. */
SimConfig table3Config(const std::string &workload_name,
                       EngineKind engine, unsigned fetch_threads,
                       unsigned fetch_width,
                       PolicyKind policy = PolicyKind::ICount);

/** Render the Table 3 parameter block (bench harness headers). */
std::string describeTable3(const CoreParams &params);

/**
 * Canonical descriptor of everything that shapes a run's warmup
 * execution: workload (benchmarks, trace paths), seed, warmup window
 * and the full core/engine/memory parameter set. Two configurations
 * with equal keys execute bit-identical warmups, so they can share a
 * warmup checkpoint; measurement-only settings (measureCycles, record
 * paths, output options) are deliberately excluded. Also embedded in
 * every checkpoint file and verified on restore.
 *
 * Keep in sync with CoreParams / EngineParams / MemoryParams: a field
 * that changes execution but is missing here would let two different
 * configurations share a warmup snapshot silently.
 */
std::string warmupConfigKey(const SimConfig &config);

} // namespace smt

#endif // SMTFETCH_SIM_SIM_CONFIG_HH
