#include "sim/journal.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "sim/result_codec.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace smt
{

namespace
{

constexpr const char *journalSchema = "smtfetch-journal-v1";

std::string
headerLine(const std::string &bench, const std::string &request_key,
           std::size_t points, std::size_t warmup_groups)
{
    std::ostringstream os;
    JsonWriter jw(os, 0);
    jw.beginObject();
    jw.field("schema", journalSchema);
    jw.field("bench", bench);
    jw.field("requestKey", request_key);
    jw.field("points", static_cast<std::uint64_t>(points));
    jw.field("warmupGroups",
             static_cast<std::uint64_t>(warmup_groups));
    jw.endObject();
    return os.str();
}

std::string
entryLine(std::size_t index, const PointOutcome &outcome)
{
    std::ostringstream os;
    JsonWriter jw(os, 0);
    jw.beginObject();
    jw.field("point", static_cast<std::uint64_t>(index));
    jw.key("outcome");
    jw.raw(outcomeToWireJson(outcome));
    jw.endObject();
    return os.str();
}

} // namespace

std::string
SweepJournal::pathFor(const std::string &dir, const std::string &bench)
{
    std::string safe = bench;
    for (char &c : safe)
        if (c == '/' || c == '\\')
            c = '_';
    return dir + "/journal_" + safe + ".jsonl";
}

SweepJournal::SweepJournal(std::string path, std::string bench,
                           std::string request_key,
                           std::size_t points,
                           std::size_t warmup_groups, bool fresh)
    : path(std::move(path)), bench(std::move(bench)),
      requestKey(std::move(request_key)), points(points),
      warmupGroups(warmup_groups)
{
    load(points, fresh);
    rewrite();
}

void
SweepJournal::load(std::size_t total_points, bool fresh)
{
    std::ifstream in(path);
    if (!in || fresh)
        return; // nothing to resume (or resume declined)

    std::string line;
    if (!std::getline(in, line) || line.empty())
        return; // empty file: treat as fresh

    JsonValue header;
    try {
        header = jsonParse(line);
    } catch (const JsonParseError &e) {
        throw JournalError(csprintf(
            "journal %s has an unreadable header (%s) — delete it "
            "or rerun with --fresh to start over",
            path.c_str(), e.what()));
    }
    const JsonValue *schema = header.find("schema");
    if (schema == nullptr || !schema->isString() ||
        schema->asString() != journalSchema)
        throw JournalError(csprintf(
            "journal %s is not a %s file — delete it or rerun "
            "with --fresh to start over",
            path.c_str(), journalSchema));
    const JsonValue *key = header.find("requestKey");
    if (key == nullptr || !key->isString() ||
        key->asString() != requestKey)
        throw JournalError(csprintf(
            "journal %s was written by a different sweep "
            "(requestKey %s, this request is %s) — the grids, "
            "windows or seed differ; rerun with --fresh to discard "
            "it or point the checkpoint directory elsewhere",
            path.c_str(),
            key != nullptr && key->isString()
                ? key->asString().c_str()
                : "<missing>",
            requestKey.c_str()));

    // Entries: skip duplicates (a respawned coordinator can re-run a
    // point whose append raced the kill), keep the first, tolerate
    // exactly one torn line at the tail.
    std::map<std::size_t, PointOutcome> seen;
    std::size_t lineno = 1;
    for (;;) {
        std::string text;
        if (!std::getline(in, text))
            break;
        ++lineno;
        if (text.empty())
            continue;
        bool at_tail = in.peek() == std::ifstream::traits_type::eof();
        try {
            JsonValue doc = jsonParse(text);
            const JsonValue *point = doc.find("point");
            const JsonValue *outcome = doc.find("outcome");
            if (point == nullptr || outcome == nullptr)
                throw CodecError(
                    "entry needs \"point\" and \"outcome\"");
            std::size_t idx =
                static_cast<std::size_t>(point->asUInt64());
            if (idx >= total_points)
                throw JournalError(csprintf(
                    "journal %s line %zu names point %zu of a "
                    "%zu-point grid — the journal belongs to a "
                    "different request; rerun with --fresh",
                    path.c_str(), lineno, idx, total_points));
            seen.emplace(idx, outcomeFromWireJson(*outcome));
        } catch (const JournalError &) {
            throw;
        } catch (const std::exception &e) {
            if (at_tail) {
                // The coordinator died mid-append; the entry never
                // finished, so the point simply reruns.
                warn("journal %s: dropping torn final line %zu",
                     path.c_str(), lineno);
                break;
            }
            throw JournalError(csprintf(
                "journal %s line %zu is corrupt (%s) — delete the "
                "journal or rerun with --fresh to start over",
                path.c_str(), lineno, e.what()));
        }
    }

    entries.reserve(seen.size());
    for (auto &[idx, outcome] : seen)
        entries.push_back({idx, std::move(outcome)});
}

void
SweepJournal::rewrite()
{
    // Normalize on open (drop torn tails and duplicates), then
    // append live completions to the rewritten file. Write-then-
    // rename so a kill during the rewrite leaves the old journal.
    unsigned long long pid =
#ifdef _WIN32
        0;
#else
        static_cast<unsigned long long>(::getpid());
#endif
    std::string tmp = path + csprintf(".tmp%llx", pid);
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            throw JournalError(csprintf(
                "cannot write journal %s: %s", tmp.c_str(),
                std::strerror(errno)));
        out << headerLine(bench, requestKey, points, warmupGroups)
            << '\n';
        for (const JournalEntry &e : entries)
            out << entryLine(e.index, e.outcome) << '\n';
        out.flush();
        if (!out)
            throw JournalError(csprintf(
                "cannot write journal %s: %s", tmp.c_str(),
                std::strerror(errno)));
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        int err = errno;
        std::remove(tmp.c_str());
        throw JournalError(csprintf(
            "cannot move journal into place at %s: %s", path.c_str(),
            std::strerror(err)));
    }
    os.open(path, std::ios::app);
    if (!os)
        throw JournalError(csprintf("cannot append to journal %s: %s",
                                    path.c_str(),
                                    std::strerror(errno)));
}

void
SweepJournal::append(std::size_t index, const PointOutcome &outcome)
{
    std::string line = entryLine(index, outcome);
    std::lock_guard<std::mutex> lock(m);
    os << line << '\n';
    os.flush();
    if (!os)
        warn("journal %s: append failed — the sweep continues but "
             "a resume will recompute this point",
             path.c_str());
}

} // namespace smt
