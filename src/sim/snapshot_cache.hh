/**
 * @file
 * Process-wide warmup-snapshot cache: a size-limited in-memory LRU of
 * post-warmup simulator checkpoints keyed by warmupConfigKey, with an
 * optional persistent on-disk tier and single-flight warmup leasing
 * so a popular warmup configuration is simulated once ever — across
 * grid points, sweeps, and (through the serve daemon) clients.
 */

#ifndef SMTFETCH_SIM_SNAPSHOT_CACHE_HH
#define SMTFETCH_SIM_SNAPSHOT_CACHE_HH

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace smt
{

/**
 * Thread-safe LRU cache of warmup snapshots (the byte strings
 * Simulator::saveCheckpointToString produces).
 *
 * Tiers:
 *  - memory: bounded by maxBytes; least-recently-used snapshots are
 *    evicted when an insertion would exceed the budget (counted in
 *    Stats::evictions). Snapshots are handed out as shared pointers,
 *    so eviction never invalidates a snapshot a restore is using.
 *  - disk: a directory of `smtckpt_<confighash>.ckpt` files (the
 *    PR 4 checkpointDir format), consulted on a memory miss and
 *    written through on fulfil. The directory is a per-call
 *    parameter, so one process-wide cache can serve requests with
 *    different (or no) persistent tiers.
 *
 * Warmup de-duplication uses single-flight leases: the first caller
 * to miss a key becomes its *leader* (Acquired::leader) and must
 * either fulfil() the key with a snapshot or abandon() it; concurrent
 * acquire() calls for the same key block until the leader publishes,
 * then share the leader's snapshot instead of re-running the warmup.
 */
class WarmupSnapshotCache
{
  public:
    /** Snapshot bytes shared between the cache and active restores. */
    using SnapshotPtr = std::shared_ptr<const std::string>;

    static constexpr std::size_t defaultMaxBytes =
        std::size_t(256) << 20;

    explicit WarmupSnapshotCache(
        std::size_t max_bytes = defaultMaxBytes);

    /** Counters since construction (monotonic except bytes/entries). */
    struct Stats
    {
        std::uint64_t hits = 0;      //!< served from the memory tier
        std::uint64_t diskHits = 0;  //!< leader loads from the disk tier
        std::uint64_t misses = 0;    //!< leases granted (warmups led)
        std::uint64_t insertions = 0;
        std::uint64_t evictions = 0; //!< LRU removals (size pressure)

        /** Disk-tier persists that failed (write or rename error,
         *  e.g. a full or cross-filesystem checkpoint directory).
         *  The sweep continues; only persistence is lost. */
        std::uint64_t persistFailures = 0;
        std::size_t bytes = 0;       //!< resident snapshot bytes
        std::size_t entries = 0;     //!< resident snapshots
        std::size_t maxBytes = 0;
    };

    /** Outcome of an acquire() call. Exactly one of snapshot/leader. */
    struct Acquired
    {
        /** Non-null on a hit: restore from this and go. */
        SnapshotPtr snapshot;

        /** The hit was served by loading the disk tier. */
        bool diskHit = false;

        /**
         * Null snapshot: the caller holds the key's warmup lease and
         * must fulfil(key, ...) after running the warmup, or
         * abandon(key) on failure (waiters then elect a new leader).
         */
        bool leader = false;
    };

    /**
     * Look the key up (memory, then `disk_dir` when non-empty),
     * blocking while another thread holds the key's lease. Disk loads
     * are promoted into the memory tier.
     */
    Acquired acquire(const std::string &key,
                     const std::string &disk_dir = "");

    /**
     * Publish a leader's snapshot: inserts into the memory tier,
     * writes through to `disk_dir` when non-empty (write-then-rename,
     * so concurrent processes sharing the directory never observe a
     * partial file), and wakes every waiter with the snapshot.
     */
    void fulfil(const std::string &key, std::string snapshot,
                const std::string &disk_dir = "");

    /**
     * Give a lease up without a snapshot (the warmup threw). Waiters
     * retry; the first one becomes the new leader.
     */
    void abandon(const std::string &key);

    Stats stats() const;

    /** Adjust the memory budget; evicts immediately if shrinking. */
    void setMaxBytes(std::size_t max_bytes);

    /** The disk-tier file for a warmup key (PR 4 cache naming). */
    static std::string diskPathFor(const std::string &disk_dir,
                                   const std::string &key);

  private:
    struct Inflight
    {
        bool done = false;
        SnapshotPtr snapshot; //!< null when abandoned
    };

    struct Entry
    {
        SnapshotPtr snapshot;
        std::list<std::string>::iterator lruPos;
    };

    /** Insert under `m`; evicts LRU tails past the byte budget. */
    void insertLocked(const std::string &key, SnapshotPtr snapshot);
    void evictToBudgetLocked();

    mutable std::mutex m;
    std::condition_variable cv;
    std::unordered_map<std::string, Entry> entries;
    std::list<std::string> lru; //!< front = most recent
    std::unordered_map<std::string, std::shared_ptr<Inflight>>
        inflight;
    std::size_t maxBytes;
    Stats counters;
};

} // namespace smt

#endif // SMTFETCH_SIM_SNAPSHOT_CACHE_HH
